(** CGen — candidate-index generation (paper §4).  Per-query heuristics
    over the referenced columns, no complex pruning; the union over the
    workload forms the candidate set S. *)

(** Candidates for one table of one query: singletons on predicate / join
    columns, equality-prefix composites, group/order-by keys, and covering
    variants with the query's referenced columns as INCLUDEs. *)
val table_candidates : Sqlast.Ast.query -> string -> Storage.Index.t list

(** Union of {!table_candidates} over the query's tables. *)
val query_candidates : Sqlast.Ast.query -> Storage.Index.t list

(** The workload's candidate set (update shells included), deduplicated,
    extended with the DBA's own interesting indexes. *)
val generate : ?dba:Storage.Index.t list -> Sqlast.Ast.workload -> Storage.Index.t list

(** Random valid indexes, for inflating S in scalability experiments
    (the paper's 10K-index S_L). *)
val random_candidates :
  Catalog.Schema.t -> n:int -> seed:int -> Storage.Index.t list
