(** The ILP baseline (Papadomanolakis & Ailamaki, SMDB 2007): index
    tuning as a BIP with one variable per {e atomic configuration},
    requiring heavy pruning before the solver runs — the contrast to
    CoPhy's per-index formulation that Figures 5 and 10 quantify.  Like
    the paper's reimplementation, it is interfaced with INUM and solved
    by the same solver stack as CoPhy. *)

type options = {
  per_table_cap : int;  (** candidates shortlisted per table per query *)
  per_query_cap : int;  (** atomic configurations kept per query *)
  gap_tolerance : float;
  time_limit : float;
  jobs : int;  (** domains for the INUM build (default [1]) *)
}

val default_options : options

type timings = {
  inum_seconds : float;
  build_seconds : float;  (** enumeration + pruning + BIP building *)
  solve_seconds : float;
}

type result = {
  config : Storage.Config.t;
  objective : float;
  timings : timings;
  configurations : int;  (** atomic configurations after pruning *)
}

val solve :
  ?options:options ->
  Optimizer.Whatif.env ->
  Sqlast.Ast.workload ->
  Storage.Index.t array ->
  budget:float ->
  result
