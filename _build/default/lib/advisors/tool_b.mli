(** "Tool-B": a DB2 Design Advisor-style technique (after Zilio et al.,
    VLDB 2004): workload compression by random sampling, RECOMMEND-style
    per-statement virtual indexes, then a greedy benefit/size knapsack
    with a swap refinement.  Sampling is what fails on heterogeneous
    workloads (Figure 9). *)

type options = {
  sample_size : int;  (** statements kept after compression *)
  seed : int;
  time_limit : float;
}

val default_options : options

(** Run the advisor under a storage budget in bytes. *)
val solve :
  ?options:options ->
  Optimizer.Whatif.env ->
  Sqlast.Ast.workload ->
  budget:float ->
  Eval.run
