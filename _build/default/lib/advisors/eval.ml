(* The paper's evaluation methodology (§5.1): the quality of a
   recommendation X* is measured against the baseline configuration X0
   (clustered primary keys only) using the what-if optimizer *directly* —
   never through the advisor's own approximations:

       perf(X*, W) = 1 - cost(X* u X0, W) / cost(X0, W) *)

let baseline_config () =
  Storage.Config.of_list
    (List.map
       (fun (t, cols) -> Storage.Index.create ~clustered:true ~table:t cols)
       Catalog.Tpch.primary_keys)

let perf env (w : Sqlast.Ast.workload) (xstar : Storage.Config.t)
    ~(baseline : Storage.Config.t) =
  let c0 = Optimizer.Whatif.workload_cost env w baseline in
  let c = Optimizer.Whatif.workload_cost env w (Storage.Config.union xstar baseline) in
  1.0 -. (c /. c0)

(* Common result shape for all advisors under test. *)
type run = {
  config : Storage.Config.t;
  seconds : float;
  whatif_calls : int;      (* direct optimizer invocations *)
  candidates_examined : int;
  timed_out : bool;
}

let time f =
  let t0 = Runtime.Clock.now () in
  let r = f () in
  (r, Runtime.Clock.now () -. t0)
