(** The evaluation methodology of the paper (§5.1): quality measured
    against the clustered-primary-key baseline with the what-if optimizer
    invoked directly. *)

(** The baseline X0: clustered primary-key indexes of the TPC-H schema. *)
val baseline_config : unit -> Storage.Config.t

(** [perf env w x ~baseline] = [1 - cost(x u X0, W) / cost(X0, W)], costs
    via direct what-if optimization. *)
val perf :
  Optimizer.Whatif.env ->
  Sqlast.Ast.workload ->
  Storage.Config.t ->
  baseline:Storage.Config.t ->
  float

(** Common result shape for the advisors under test. *)
type run = {
  config : Storage.Config.t;
  seconds : float;
  whatif_calls : int;
  candidates_examined : int;
  timed_out : bool;
}

(** [time f] runs [f] and returns its result with the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float
