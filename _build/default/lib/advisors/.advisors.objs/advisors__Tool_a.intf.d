lib/advisors/tool_a.mli: Eval Optimizer Sqlast Storage
