lib/advisors/tool_a.ml: Cophy Eval Hashtbl List Optimizer Option Runtime Sqlast Storage
