lib/advisors/tool_a.ml: Cophy Eval Hashtbl List Optimizer Option Sqlast Storage Unix
