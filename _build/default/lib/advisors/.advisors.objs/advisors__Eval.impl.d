lib/advisors/eval.ml: Catalog List Optimizer Runtime Sqlast Storage
