lib/advisors/eval.ml: Catalog List Optimizer Sqlast Storage Unix
