lib/advisors/ilp.mli: Optimizer Sqlast Storage
