lib/advisors/tool_b.mli: Eval Optimizer Sqlast
