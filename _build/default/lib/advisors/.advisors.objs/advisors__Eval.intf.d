lib/advisors/eval.mli: Optimizer Sqlast Storage
