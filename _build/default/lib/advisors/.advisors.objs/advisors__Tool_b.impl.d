lib/advisors/tool_b.ml: Array Cophy Eval List Optimizer Random Sqlast Storage Unix
