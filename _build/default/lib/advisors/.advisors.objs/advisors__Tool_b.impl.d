lib/advisors/tool_b.ml: Array Cophy Eval List Optimizer Random Runtime Sqlast Storage
