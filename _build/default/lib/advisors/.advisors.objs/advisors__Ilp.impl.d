lib/advisors/ilp.ml: Array Fun Hashtbl Inum List Lp Optimizer Option Printf Runtime Sqlast Storage
