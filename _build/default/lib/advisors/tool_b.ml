(* "Tool-B": a DB2 Design Advisor-style technique (Zilio et al., VLDB
   2004), the paper's Tool-B.  Its two distinguishing traits, both of
   which the paper's experiments probe:

   - workload compression by random sampling — effective on homogeneous
     workloads (15 recurring templates), much less so on heterogeneous
     ones (Fig. 9);
   - RECOMMEND-then-greedy: the optimizer is asked, per sampled
     statement, which virtual indexes its best plan would use; the union
     is then knapsacked greedily by benefit/size, with a swap refinement
     pass. *)

type options = {
  sample_size : int;          (* statements kept after compression *)
  seed : int;
  time_limit : float;
}

let default_options = { sample_size = 60; seed = 17; time_limit = 300.0 }

let solve ?(options = default_options) (env : Optimizer.Whatif.env)
    (w : Sqlast.Ast.workload) ~budget =
  let schema = env.Optimizer.Whatif.schema in
  let t0 = Runtime.Clock.now () in
  let rng = Random.State.make [| options.seed; 0xb0b |] in
  (* Workload compression: uniform random sample. *)
  let arr = Array.of_list w in
  let n = Array.length arr in
  let sample =
    if n <= options.sample_size then Array.to_list arr
    else
      List.init options.sample_size (fun _ ->
          arr.(Random.State.int rng n))
  in
  let scale = float_of_int n /. float_of_int (List.length sample) in
  let shells =
    List.map
      (fun ({ Sqlast.Ast.stmt; weight } : Sqlast.Ast.weighted) ->
        let shell =
          match stmt with
          | Sqlast.Ast.Select q -> q
          | Sqlast.Ast.Update u -> Sqlast.Ast.query_shell u
        in
        (shell, weight *. scale))
      sample
  in
  (* RECOMMEND: per sampled statement, the virtual indexes the optimizer's
     best plan uses under the statement's own candidates. *)
  let virtuals =
    List.fold_left
      (fun acc (q, _) ->
        let per_query = Storage.Config.of_list (Cophy.Cgen.query_candidates q) in
        let plan = Optimizer.Whatif.optimize env q per_query in
        List.fold_left
          (fun acc ix -> Storage.Config.add ix acc)
          acc
          (Optimizer.Plan.indexes_used plan))
      Storage.Config.empty shells
  in
  (* Greedy benefit/size knapsack over the virtual indexes, benefits
     measured on the compressed workload with direct what-if. *)
  let cost_under config =
    List.fold_left
      (fun acc (q, weight) -> acc +. (weight *. Optimizer.Whatif.cost env q config))
      0.0 shells
  in
  let base = cost_under Storage.Config.empty in
  let scored =
    List.map
      (fun ix ->
        let benefit = base -. cost_under (Storage.Config.of_list [ ix ]) in
        (ix, benefit /. max 1.0 (Storage.Index.size_bytes schema ix), benefit))
      (Storage.Config.to_list virtuals)
    |> List.filter (fun (_, _, b) -> b > 0.0)
    |> List.sort (fun (_, r1, _) (_, r2, _) -> compare r2 r1)
  in
  let chosen = ref Storage.Config.empty and used = ref 0.0 in
  List.iter
    (fun (ix, _, _) ->
      let s = Storage.Index.size_bytes schema ix in
      if !used +. s <= budget then begin
        chosen := Storage.Config.add ix !chosen;
        used := !used +. s
      end)
    scored;
  (* Swap refinement: try replacing a chosen index with an unchosen one
     when it reduces the compressed-workload cost within budget. *)
  let out_of_time () = Runtime.Clock.now () -. t0 > options.time_limit in
  let improved = ref true in
  while !improved && not (out_of_time ()) do
    improved := false;
    let current_cost = cost_under !chosen in
    List.iter
      (fun (cand, _, _) ->
        if (not (Storage.Config.mem cand !chosen)) && not (out_of_time ())
        then begin
          let s_cand = Storage.Index.size_bytes schema cand in
          Storage.Config.iter
            (fun old ->
              if not !improved then begin
                let s_old = Storage.Index.size_bytes schema old in
                if !used -. s_old +. s_cand <= budget then begin
                  let swapped =
                    Storage.Config.add cand (Storage.Config.remove old !chosen)
                  in
                  let c = cost_under swapped in
                  if c < current_cost -. 1e-6 then begin
                    chosen := swapped;
                    used := !used -. s_old +. s_cand;
                    improved := true
                  end
                end
              end)
            !chosen
        end)
      scored
  done;
  {
    Eval.config = !chosen;
    seconds = Runtime.Clock.now () -. t0;
    whatif_calls = Optimizer.Whatif.whatif_calls env;
    candidates_examined = Storage.Config.cardinal virtuals;
    timed_out = out_of_time ();
  }
