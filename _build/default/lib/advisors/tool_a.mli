(** "Tool-A": a relaxation-based commercial-style advisor (after Bruno &
    Chaudhuri, SIGMOD 2005) driving the what-if optimizer directly — the
    source of its poor scaling with workload size that Table 1 and
    Figures 4/7 exhibit. *)

type options = {
  time_limit : float;  (** wall-clock budget; exceeded = "timed out" *)
  max_transformations : int;
}

val default_options : options

(** Prefix-preserving merge of two indexes on the same table (the
    relaxation search's merge transformation). *)
val merge_indexes : Storage.Index.t -> Storage.Index.t -> Storage.Index.t

(** Run the advisor under a storage budget in bytes. *)
val solve :
  ?options:options ->
  Optimizer.Whatif.env ->
  Sqlast.Ast.workload ->
  budget:float ->
  Eval.run
