(* The TPC-H schema with statistics scaled by a scale factor, mirroring the
   1 GB (sf = 1) database of the paper.  The [z] parameter applies tpcdskew
   style Zipf skew to the non-key attributes, like the generator of
   Chaudhuri & Narasayya used in the paper's evaluation. *)

let sf_rows sf base = max 1 (int_of_float (float_of_int base *. sf))

let schema ?(sf = 1.0) ?(z = 0.0) () =
  let open Schema in
  let rows = sf_rows sf in
  (* Distinct counts follow the TPC-H specification; skew is applied to the
     value distribution of non-key columns only (keys stay uniform, as
     tpcdskew leaves primary keys dense). *)
  let region =
    table "region" ~rows:5
      [
        column ~distinct:5 "r_regionkey" Int;
        column ~distinct:5 "r_name" (Char 25);
        column ~distinct:5 "r_comment" (Varchar 152);
      ]
  in
  let nation =
    table "nation" ~rows:25
      [
        column ~distinct:25 "n_nationkey" Int;
        column ~distinct:25 "n_name" (Char 25);
        column ~distinct:5 ~skew:z "n_regionkey" Int;
        column ~distinct:25 "n_comment" (Varchar 152);
      ]
  in
  let supplier_rows = rows 10_000 in
  let supplier =
    table "supplier" ~rows:supplier_rows
      [
        column ~distinct:supplier_rows "s_suppkey" Int;
        column ~distinct:supplier_rows "s_name" (Char 25);
        column ~distinct:supplier_rows "s_address" (Varchar 40);
        column ~distinct:25 ~skew:z "s_nationkey" Int;
        column ~distinct:supplier_rows "s_phone" (Char 15);
        column ~distinct:(max 1 (supplier_rows / 10)) ~skew:z "s_acctbal"
          Decimal;
        column ~distinct:supplier_rows "s_comment" (Varchar 101);
      ]
  in
  let part_rows = rows 200_000 in
  let part =
    table "part" ~rows:part_rows
      [
        column ~distinct:part_rows "p_partkey" Int;
        column ~distinct:part_rows "p_name" (Varchar 55);
        column ~distinct:25 ~skew:z "p_mfgr" (Char 25);
        column ~distinct:150 ~skew:z "p_brand" (Char 10);
        column ~distinct:150 ~skew:z "p_type" (Varchar 25);
        column ~distinct:50 ~skew:z "p_size" Int;
        column ~distinct:40 ~skew:z "p_container" (Char 10);
        column ~distinct:(max 1 (part_rows / 10)) ~skew:z "p_retailprice"
          Decimal;
        column ~distinct:part_rows "p_comment" (Varchar 23);
      ]
  in
  let partsupp_rows = rows 800_000 in
  let partsupp =
    table "partsupp" ~rows:partsupp_rows
      [
        column ~distinct:part_rows ~skew:z "ps_partkey" Int;
        column ~distinct:supplier_rows ~skew:z "ps_suppkey" Int;
        column ~distinct:10_000 ~skew:z "ps_availqty" Int;
        column ~distinct:(max 1 (partsupp_rows / 8)) ~skew:z "ps_supplycost"
          Decimal;
        column ~distinct:partsupp_rows "ps_comment" (Varchar 199);
      ]
  in
  let customer_rows = rows 150_000 in
  let customer =
    table "customer" ~rows:customer_rows
      [
        column ~distinct:customer_rows "c_custkey" Int;
        column ~distinct:customer_rows "c_name" (Varchar 25);
        column ~distinct:customer_rows "c_address" (Varchar 40);
        column ~distinct:25 ~skew:z "c_nationkey" Int;
        column ~distinct:customer_rows "c_phone" (Char 15);
        column ~distinct:(max 1 (customer_rows / 10)) ~skew:z "c_acctbal"
          Decimal;
        column ~distinct:5 ~skew:z "c_mktsegment" (Char 10);
        column ~distinct:customer_rows "c_comment" (Varchar 117);
      ]
  in
  let orders_rows = rows 1_500_000 in
  let orders =
    table "orders" ~rows:orders_rows
      [
        column ~distinct:orders_rows "o_orderkey" Int;
        column ~distinct:customer_rows ~skew:z "o_custkey" Int;
        column ~distinct:3 ~skew:z "o_orderstatus" (Char 1);
        column ~distinct:(max 1 (orders_rows / 4)) ~skew:z "o_totalprice"
          Decimal;
        column ~distinct:2406 ~skew:z "o_orderdate" Date;
        column ~distinct:5 ~skew:z "o_orderpriority" (Char 15);
        column ~distinct:1_000 ~skew:z "o_clerk" (Char 15);
        column ~distinct:1 "o_shippriority" Int;
        column ~distinct:orders_rows "o_comment" (Varchar 79);
      ]
  in
  let lineitem_rows = rows 6_000_000 in
  let lineitem =
    table "lineitem" ~rows:lineitem_rows
      [
        column ~distinct:orders_rows ~skew:z "l_orderkey" Int;
        column ~distinct:part_rows ~skew:z "l_partkey" Int;
        column ~distinct:supplier_rows ~skew:z "l_suppkey" Int;
        column ~distinct:7 "l_linenumber" Int;
        column ~distinct:50 ~skew:z "l_quantity" Decimal;
        column ~distinct:(max 1 (lineitem_rows / 6)) ~skew:z
          "l_extendedprice" Decimal;
        column ~distinct:11 ~skew:z "l_discount" Decimal;
        column ~distinct:9 ~skew:z "l_tax" Decimal;
        column ~distinct:3 ~skew:z "l_returnflag" (Char 1);
        column ~distinct:2 ~skew:z "l_linestatus" (Char 1);
        column ~distinct:2526 ~skew:z "l_shipdate" Date;
        column ~distinct:2466 ~skew:z "l_commitdate" Date;
        column ~distinct:2554 ~skew:z "l_receiptdate" Date;
        column ~distinct:4 ~skew:z "l_shipinstruct" (Char 25);
        column ~distinct:7 ~skew:z "l_shipmode" (Char 10);
        column ~distinct:lineitem_rows "l_comment" (Varchar 44);
      ]
  in
  Schema.create
    (Printf.sprintf "tpch_sf%.2g_z%.2g" sf z)
    [ region; nation; supplier; part; partsupp; customer; orders; lineitem ]

(* Clustered primary-key indexes: the baseline configuration X0 of the
   paper's evaluation metric. *)
let primary_keys =
  [
    ("region", [ "r_regionkey" ]);
    ("nation", [ "n_nationkey" ]);
    ("supplier", [ "s_suppkey" ]);
    ("part", [ "p_partkey" ]);
    ("partsupp", [ "ps_partkey"; "ps_suppkey" ]);
    ("customer", [ "c_custkey" ]);
    ("orders", [ "o_orderkey" ]);
    ("lineitem", [ "l_orderkey"; "l_linenumber" ]);
  ]

(* Total heap size of the database in bytes, the unit in which the paper
   expresses the storage budget ("a fraction M of the size of the data"). *)
let database_size = Schema.total_heap_bytes
