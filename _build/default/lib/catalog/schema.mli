(** Relational schema plus the statistics consumed by the what-if optimizer:
    row counts, column widths, distinct-value counts and Zipf skew. *)

type col_type =
  | Int
  | Float
  | Decimal
  | Char of int
  | Varchar of int
  | Date

type column = private {
  col_name : string;
  col_type : col_type;
  distinct : int;
  skew : float;
}

type table = private {
  tbl_name : string;
  columns : column array;
  row_count : int;
}

type t

(** Storage page size in bytes used throughout the cost model. *)
val page_size : int

(** [column ~distinct name ty] declares a column; [skew] defaults to 0
    (uniform).  @raise Invalid_argument when [distinct < 1]. *)
val column : ?skew:float -> distinct:int -> string -> col_type -> column

(** [table name ~rows cols] declares a table.
    @raise Invalid_argument on duplicate column names or [rows < 1]. *)
val table : string -> rows:int -> column list -> table

(** @raise Invalid_argument on duplicate table names. *)
val create : string -> table list -> t

val name : t -> string
val tables : t -> table list

(** @raise Not_found when absent. *)
val find_table : t -> string -> table

val find_table_opt : t -> string -> table option

(** @raise Not_found when absent. *)
val find_column : table -> string -> column

val mem_column : table -> string -> bool
val column_width : column -> int
val col_type_width : col_type -> int

(** Tuple width in bytes including per-row header. *)
val row_width : table -> int

(** Heap pages occupied by the table. *)
val table_pages : table -> int

(** Total heap size of all tables in bytes — what storage budgets are a
    fraction of. *)
val total_heap_bytes : t -> float

(** The Zipf distribution of a column's value frequencies. *)
val zipf_of_column : column -> Zipf.t

(** Expected selectivity of an equality predicate on the column. *)
val equality_selectivity : column -> float

val pp_column : column Fmt.t
val pp_table : table Fmt.t
val pp : t Fmt.t
