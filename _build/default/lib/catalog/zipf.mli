(** Zipfian value-frequency distributions, modelling skewed data as produced
    by the tpcdskew TPC-H generator.  A distribution is over ranks
    [1..n] with mass proportional to [r^-z]; [z = 0] is uniform. *)

type t

(** [create ~n ~z] builds a distribution over [n] ranks with skew [z].
    @raise Invalid_argument if [n < 1] or [z < 0]. *)
val create : n:int -> z:float -> t

val n : t -> int
val z : t -> float

(** Probability mass of the value at 1-based rank [r]. *)
val mass : t -> int -> float

(** Cumulative mass of ranks [1..r]; [cumulative t 0 = 0.];
    ranks beyond [n] clamp to 1. *)
val cumulative : t -> int -> float

(** Expected selectivity of [col = c] when [c] is drawn from the data
    distribution itself: [sum_r p_r^2].  Equals [1/n] when [z = 0]. *)
val equality_selectivity : t -> float

(** Mass of the contiguous rank interval [\[lo, hi\]] (inclusive). *)
val interval_mass : t -> lo:int -> hi:int -> float

(** Smallest rank [r] with [cumulative t r >= u], for [u] in [0, 1]. *)
val rank_of_quantile : t -> float -> int

(** Draw a rank according to the distribution. *)
val sample : t -> Random.State.t -> int

(** Selectivity of a range predicate spanning a fraction [frac] of the rank
    domain whose start rank is drawn from the distribution itself (queries
    tend to target popular values), making skewed ranges heavy. *)
val range_selectivity_head_biased : t -> frac:float -> Random.State.t -> float
