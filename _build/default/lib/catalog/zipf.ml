(* Zipf(z) distribution over ranks 1..n, used to model skewed column value
   frequencies as produced by the tpcdskew generator of Chaudhuri &
   Narasayya.  z = 0 is uniform; larger z concentrates mass on low ranks. *)

type t = {
  n : int;              (* number of distinct values (ranks)  *)
  z : float;            (* skew parameter, z >= 0             *)
  harmonic : float;     (* H_{n,z} = sum_{r=1..n} r^{-z}      *)
}

let harmonic_number n z =
  (* Exact summation below a threshold; Euler–Maclaurin style integral
     approximation above it, to keep construction O(1)-ish for the huge
     domains of TPC-H columns. *)
  let exact_limit = 20_000 in
  if n <= exact_limit then begin
    let acc = ref 0.0 in
    for r = 1 to n do
      acc := !acc +. (float_of_int r ** (-.z))
    done;
    !acc
  end
  else begin
    let acc = ref 0.0 in
    for r = 1 to exact_limit do
      acc := !acc +. (float_of_int r ** (-.z))
    done;
    let a = float_of_int exact_limit and b = float_of_int n in
    let tail =
      if abs_float (z -. 1.0) < 1e-9 then log (b /. a)
      else ((b ** (1.0 -. z)) -. (a ** (1.0 -. z))) /. (1.0 -. z)
    in
    !acc +. tail
  end

let create ~n ~z =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if z < 0.0 then invalid_arg "Zipf.create: z must be >= 0";
  { n; z; harmonic = harmonic_number n z }

let n t = t.n
let z t = t.z

(* Probability mass of the value of rank r (1-based). *)
let mass t r =
  if r < 1 || r > t.n then invalid_arg "Zipf.mass: rank out of range";
  (float_of_int r ** (-.t.z)) /. t.harmonic

(* Cumulative mass of ranks 1..r. *)
let cumulative t r =
  if r < 0 then invalid_arg "Zipf.cumulative: negative rank";
  let r = min r t.n in
  harmonic_number (max r 0) t.z /. t.harmonic
  |> fun x -> if r = 0 then 0.0 else x

(* Expected selectivity of an equality predicate whose constant is drawn
   from the same distribution as the data: sum_r p_r^2 = H_{n,2z}/H_{n,z}^2.
   For z=0 this is exactly 1/n. *)
let equality_selectivity t =
  harmonic_number t.n (2.0 *. t.z) /. (t.harmonic *. t.harmonic)

(* Mass of a contiguous rank interval [lo, hi]. *)
let interval_mass t ~lo ~hi =
  if lo > hi then 0.0
  else cumulative t hi -. cumulative t (lo - 1)

(* Sample a rank according to the distribution, using inverse-CDF with
   binary search over [cumulative].  Deterministic given the float u. *)
let rank_of_quantile t u =
  if u < 0.0 || u > 1.0 then invalid_arg "Zipf.rank_of_quantile";
  let rec bisect lo hi =
    (* invariant: cumulative (lo-1) < u <= cumulative hi *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cumulative t mid >= u then bisect lo mid else bisect (mid + 1) hi
  in
  bisect 1 t.n

let sample t rng = rank_of_quantile t (Random.State.float rng 1.0)

(* Expected selectivity of a range predicate covering a fraction [frac] of
   the rank domain, with the interval's position drawn uniformly.  Under
   uniform data this is exactly [frac]; under skew the expectation is still
   [frac] but the *typical* (median) range is lighter while ranges touching
   the head are much heavier.  We expose the head-biased variant used by the
   workload generator: the interval start rank is itself Zipf-distributed,
   modelling queries that target popular values. *)
let range_selectivity_head_biased t ~frac rng =
  let width = max 1 (int_of_float (ceil (frac *. float_of_int t.n))) in
  let start = sample t rng in
  let lo = min start (t.n - width + 1) |> max 1 in
  let hi = min t.n (lo + width - 1) in
  interval_mass t ~lo ~hi
