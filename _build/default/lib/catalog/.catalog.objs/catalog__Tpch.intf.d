lib/catalog/tpch.mli: Schema
