lib/catalog/zipf.ml: Random
