lib/catalog/zipf.mli: Random
