lib/catalog/tpch.ml: Printf Schema
