lib/catalog/schema.mli: Fmt Zipf
