lib/catalog/schema.ml: Array Fmt Hashtbl List Zipf
