(* Relational schema with the statistics the what-if optimizer needs:
   row counts, column widths, distinct counts, and per-column skew. *)

type col_type =
  | Int
  | Float
  | Decimal
  | Char of int
  | Varchar of int
  | Date

let col_type_width = function
  | Int -> 4
  | Float -> 8
  | Decimal -> 8
  | Char n -> n
  | Varchar n -> (n + 1) / 2  (* average fill of variable-length fields *)
  | Date -> 4

type column = {
  col_name : string;
  col_type : col_type;
  distinct : int;           (* number of distinct values *)
  skew : float;             (* Zipf z of the value frequencies *)
}

type table = {
  tbl_name : string;
  columns : column array;
  row_count : int;
}

type t = {
  name : string;
  tables : table list;
}

let page_size = 8192

let column ?(skew = 0.0) ~distinct col_name col_type =
  if distinct < 1 then invalid_arg "Schema.column: distinct must be >= 1";
  { col_name; col_type; distinct; skew }

let table tbl_name ~rows columns =
  if rows < 1 then invalid_arg "Schema.table: rows must be >= 1";
  (* Column names must be unique within a table. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.col_name then
        invalid_arg ("Schema.table: duplicate column " ^ c.col_name);
      Hashtbl.add seen c.col_name ())
    columns;
  { tbl_name; columns = Array.of_list columns; row_count = rows }

let create name tables =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if Hashtbl.mem seen t.tbl_name then
        invalid_arg ("Schema.create: duplicate table " ^ t.tbl_name);
      Hashtbl.add seen t.tbl_name ())
    tables;
  { name; tables }

let tables t = t.tables
let name t = t.name

let find_table t tbl_name =
  match List.find_opt (fun tb -> tb.tbl_name = tbl_name) t.tables with
  | Some tb -> tb
  | None -> raise Not_found

let find_table_opt t tbl_name =
  List.find_opt (fun tb -> tb.tbl_name = tbl_name) t.tables

let find_column tbl col_name =
  let rec loop i =
    if i >= Array.length tbl.columns then raise Not_found
    else if tbl.columns.(i).col_name = col_name then tbl.columns.(i)
    else loop (i + 1)
  in
  loop 0

let mem_column tbl col_name =
  Array.exists (fun c -> c.col_name = col_name) tbl.columns

let column_width c = col_type_width c.col_type

(* Width of a full tuple, including a small per-row header. *)
let row_header_width = 24

let row_width tbl =
  Array.fold_left (fun acc c -> acc + column_width c) row_header_width
    tbl.columns

(* Number of heap pages occupied by the table. *)
let table_pages tbl =
  let per_page = max 1 (page_size / row_width tbl) in
  max 1 ((tbl.row_count + per_page - 1) / per_page)

(* Total heap size of all tables in bytes — what the storage budget is a
   fraction of. *)
let total_heap_bytes t =
  List.fold_left
    (fun acc tbl -> acc +. float_of_int (table_pages tbl * page_size))
    0.0 t.tables

let zipf_of_column c = Zipf.create ~n:c.distinct ~z:c.skew

(* Expected selectivity of an equality predicate on [c] with a constant
   drawn from the data distribution. *)
let equality_selectivity c = Zipf.equality_selectivity (zipf_of_column c)

let pp_col_type ppf = function
  | Int -> Fmt.string ppf "int"
  | Float -> Fmt.string ppf "float"
  | Decimal -> Fmt.string ppf "decimal"
  | Char n -> Fmt.pf ppf "char(%d)" n
  | Varchar n -> Fmt.pf ppf "varchar(%d)" n
  | Date -> Fmt.string ppf "date"

let pp_column ppf c =
  Fmt.pf ppf "%s %a [ndv=%d z=%.1f]" c.col_name pp_col_type c.col_type
    c.distinct c.skew

let pp_table ppf tbl =
  Fmt.pf ppf "@[<v 2>%s (%d rows, %d pages):@ %a@]" tbl.tbl_name tbl.row_count
    (table_pages tbl)
    (Fmt.array ~sep:Fmt.sp pp_column)
    tbl.columns

let pp ppf t =
  Fmt.pf ppf "@[<v>schema %s:@ %a@]" t.name (Fmt.list ~sep:Fmt.cut pp_table)
    t.tables
