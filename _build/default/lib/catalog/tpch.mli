(** The TPC-H schema with scale-factor- and skew-parameterized statistics,
    standing in for the 1 GB tpcdskew database of the paper's evaluation. *)

(** [schema ~sf ~z ()] builds the 8-table TPC-H schema at scale factor [sf]
    (default 1.0 ≈ 1 GB) with Zipf skew [z] on non-key attributes
    (default 0 = uniform, matching tpcdskew's z parameter). *)
val schema : ?sf:float -> ?z:float -> unit -> Schema.t

(** [(table, key columns)] pairs of the clustered primary keys, forming the
    baseline configuration X0 of the evaluation metric. *)
val primary_keys : (string * string list) list

(** Total heap size in bytes; storage budgets are fractions of this. *)
val database_size : Schema.t -> float
