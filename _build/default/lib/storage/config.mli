(** Index configurations (sets of {!Index.t}) and atomic-configuration
    enumeration. *)

type t

val empty : t
val of_list : Index.t list -> t
val to_list : t -> Index.t list
val add : Index.t -> t -> t
val remove : Index.t -> t -> t
val mem : Index.t -> t -> bool
val union : t -> t -> t
val cardinal : t -> int
val is_empty : t -> bool
val subset : t -> t -> bool
val fold : (Index.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Index.t -> bool) -> t -> t
val iter : (Index.t -> unit) -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

(** Indexes defined on the given table. *)
val on_table : t -> string -> Index.t list

(** Sum of estimated index sizes in bytes. *)
val total_size : Catalog.Schema.t -> t -> float

(** True when no table carries more than one clustered index. *)
val clustered_valid : t -> bool

(** Every way to pick at most one index per listed table — [atom(X)] of the
    paper.  Exponential; for tests and the ILP baseline only. *)
val atomic_configurations : t -> tables:string list -> t list

val pp : t Fmt.t
