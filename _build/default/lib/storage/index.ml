(* Index definitions.  Per the paper (§2) an index is defined on exactly one
   table; we support composite keys, INCLUDE columns (non-key payload, as in
   covering indexes), and clustered indexes.  Indexes are interned so they
   can be compared and hashed cheaply and used as BIP variable identities. *)

type t = {
  table : string;
  key_columns : string list;       (* ordered search key *)
  include_columns : string list;   (* sorted payload-only columns *)
  clustered : bool;
}

let create ?(clustered = false) ?(includes = []) ~table key_columns =
  if key_columns = [] then invalid_arg "Index.create: empty key";
  let rec dup = function
    | [] -> false
    | c :: rest -> List.mem c rest || dup rest
  in
  if dup key_columns then invalid_arg "Index.create: duplicate key column";
  let includes =
    List.sort_uniq String.compare
      (List.filter (fun c -> not (List.mem c key_columns)) includes)
  in
  { table; key_columns; include_columns = includes; clustered }

let table t = t.table
let key_columns t = t.key_columns
let include_columns t = t.include_columns
let clustered t = t.clustered

(* All columns whose values the index can serve without a base-table
   lookup.  A clustered index covers the whole table. *)
let covered_columns t = t.key_columns @ t.include_columns

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b
let hash (t : t) = Hashtbl.hash t

let to_string t =
  Printf.sprintf "%s%s(%s%s)"
    (if t.clustered then "c" else "")
    t.table
    (String.concat "," t.key_columns)
    (match t.include_columns with
    | [] -> ""
    | cs -> " incl " ^ String.concat "," cs)

let pp ppf t = Fmt.string ppf (to_string t)

(* --- Size estimation --- *)

(* B+-tree size: leaf pages hold (key + rid + payload) entries; interior
   pages add ~0.5% overhead; default fill factor models page slack.  A
   clustered index stores full rows in its leaves, so its *additional*
   footprint over the heap is only the interior levels — but since building
   it reorganizes the heap we charge leaf storage like commercial advisors
   do when budgeting. *)
let fill_factor = 0.70
let rid_width = 8

let entry_width schema t =
  let tbl = Catalog.Schema.find_table schema t.table in
  let width_of c = Catalog.Schema.column_width (Catalog.Schema.find_column tbl c) in
  let keys = List.fold_left (fun acc c -> acc + width_of c) 0 t.key_columns in
  if t.clustered then keys + Catalog.Schema.row_width tbl
  else
    keys + rid_width
    + List.fold_left (fun acc c -> acc + width_of c) 0 t.include_columns

let leaf_pages schema t =
  let tbl = Catalog.Schema.find_table schema t.table in
  let per_page =
    max 1
      (int_of_float
         (float_of_int Catalog.Schema.page_size *. fill_factor
          /. float_of_int (entry_width schema t)))
  in
  max 1 ((tbl.Catalog.Schema.row_count + per_page - 1) / per_page)

(* Estimated size in bytes, including interior nodes. *)
let size_bytes schema t =
  let leaves = leaf_pages schema t in
  let interior = max 1 (leaves / 100) in
  float_of_int ((leaves + interior) * Catalog.Schema.page_size)

(* B+-tree height (number of levels above the leaves), used for seek cost. *)
let height schema t =
  let leaves = leaf_pages schema t in
  let fanout = 200 in
  let rec levels n acc = if n <= 1 then acc else levels (n / fanout) (acc + 1) in
  max 1 (levels leaves 1)

(* The number of distinct values of the full key, used for update cost and
   duplicate handling: capped product of per-column distinct counts. *)
let key_distinct schema t =
  let tbl = Catalog.Schema.find_table schema t.table in
  let d =
    List.fold_left
      (fun acc c ->
        let col = Catalog.Schema.find_column tbl c in
        min
          (float_of_int tbl.Catalog.Schema.row_count)
          (acc *. float_of_int col.Catalog.Schema.distinct))
      1.0 t.key_columns
  in
  max 1.0 d

(* Does updating [cols] require maintaining this index? *)
let affected_by_update t ~set_columns =
  List.exists (fun c -> List.mem c (covered_columns t)) set_columns

(* Validity against a schema. *)
let validate schema t =
  match Catalog.Schema.find_table_opt schema t.table with
  | None -> Error (Printf.sprintf "index on unknown table %s" t.table)
  | Some tbl ->
      let missing =
        List.filter
          (fun c -> not (Catalog.Schema.mem_column tbl c))
          (covered_columns t)
      in
      if missing = [] then Ok ()
      else
        Error
          (Printf.sprintf "index %s references unknown columns: %s"
             (to_string t) (String.concat ", " missing))
