(* Index configurations: sets of indexes, and the atomic configurations of
   Finkelstein et al. (at most one index per table) that INUM plans draw
   their access methods from. *)

module Index_set = Set.Make (Index)

type t = Index_set.t

let empty = Index_set.empty
let of_list = Index_set.of_list
let to_list = Index_set.elements
let add = Index_set.add
let remove = Index_set.remove
let mem = Index_set.mem
let union = Index_set.union
let cardinal = Index_set.cardinal
let is_empty = Index_set.is_empty
let subset = Index_set.subset
let fold = Index_set.fold
let filter = Index_set.filter
let iter = Index_set.iter
let equal = Index_set.equal
let compare = Index_set.compare

(* Indexes of the configuration defined on a given table. *)
let on_table t table =
  Index_set.filter (fun ix -> Index.table ix = table) t |> Index_set.elements

let total_size schema t =
  Index_set.fold (fun ix acc -> acc +. Index.size_bytes schema ix) t 0.0

(* At most one clustered index per table? *)
let clustered_valid t =
  let tbl = Hashtbl.create 8 in
  try
    Index_set.iter
      (fun ix ->
        if Index.clustered ix then begin
          if Hashtbl.mem tbl (Index.table ix) then raise Exit;
          Hashtbl.add tbl (Index.table ix) ()
        end)
      t;
    true
  with Exit -> false

(* Enumerate the atomic configurations of [t] restricted to [tables]: every
   way of picking at most one index per listed table.  Exponential — only
   used in tests and by the ILP baseline on pruned candidate sets. *)
let atomic_configurations t ~tables =
  let per_table =
    List.map (fun tb -> None :: List.map Option.some (on_table t tb)) tables
  in
  let rec cross = function
    | [] -> [ [] ]
    | choices :: rest ->
        let tails = cross rest in
        List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) choices
  in
  List.map (fun picks -> of_list (List.filter_map Fun.id picks)) (cross per_table)

let pp ppf t =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") Index.pp)
    (Index_set.elements t)
