(** Index definitions: composite keys, INCLUDE payload columns, clustered
    indexes.  Each index is defined on exactly one table (paper §2). *)

type t = private {
  table : string;
  key_columns : string list;
  include_columns : string list;  (** sorted, disjoint from the key *)
  clustered : bool;
}

(** [create ~table keys] builds an index; include columns overlapping the
    key are dropped.  @raise Invalid_argument on an empty or duplicated key. *)
val create :
  ?clustered:bool -> ?includes:string list -> table:string -> string list -> t

val table : t -> string
val key_columns : t -> string list
val include_columns : t -> string list
val clustered : t -> bool

(** Columns servable without a base-table lookup (whole table if clustered). *)
val covered_columns : t -> string list

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string
val pp : t Fmt.t

(** Estimated on-disk size in bytes (leaves + interior). *)
val size_bytes : Catalog.Schema.t -> t -> float

(** Number of leaf pages. *)
val leaf_pages : Catalog.Schema.t -> t -> int

(** B+-tree height in levels (>= 1), for seek costing. *)
val height : Catalog.Schema.t -> t -> int

(** Distinct count of the full composite key (capped by the row count). *)
val key_distinct : Catalog.Schema.t -> t -> float

(** Whether an UPDATE writing [set_columns] must maintain this index. *)
val affected_by_update : t -> set_columns:string list -> bool

val validate : Catalog.Schema.t -> t -> (unit, string) result
