lib/storage/config.mli: Catalog Fmt Index
