lib/storage/index.mli: Catalog Fmt
