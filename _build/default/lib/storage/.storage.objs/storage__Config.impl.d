lib/storage/config.ml: Fmt Fun Hashtbl Index List Option Set
