lib/storage/index.ml: Catalog Fmt Hashtbl List Printf Stdlib String
