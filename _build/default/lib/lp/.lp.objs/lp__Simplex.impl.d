lib/lp/simplex.ml: Array List Problem
