lib/lp/branch_bound.ml: Array Float List Problem Simplex Unix
