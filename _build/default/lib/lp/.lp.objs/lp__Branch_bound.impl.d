lib/lp/branch_bound.ml: Array Float List Problem Runtime Simplex
