lib/lp/simplex.mli: Problem
