lib/lp/branch_bound.mli: Problem
