lib/lp/lp_format.ml: Array Buffer Fmt Hashtbl List Printf Problem String
