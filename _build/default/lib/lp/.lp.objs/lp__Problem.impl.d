lib/lp/problem.ml: Array Fmt Hashtbl List Option Printf
