lib/lp/lp_format.mli: Problem
