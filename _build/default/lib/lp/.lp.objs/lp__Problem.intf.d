lib/lp/problem.mli: Fmt
