(** Bounded-variable primal simplex (revised form, dense basis inverse).

    Two phases: artificial variables establish feasibility, then the real
    objective is minimized.  Nonbasic variables rest at a bound; the
    ratio test includes bound-to-bound flips.  Dantzig pricing with a
    Bland's-rule fallback after stalling guards against cycling. *)

type status = Optimal | Infeasible | Unbounded | Iter_limit

type result = {
  status : status;
  x : float array;  (** structural variable values *)
  obj : float;  (** c'x, without the problem's objective offset *)
  duals : float array;  (** one per row *)
  iterations : int;
}

(** Solve the LP relaxation (integrality marks are ignored).
    [max_iters = 0] picks a default proportional to the problem size. *)
val solve : ?max_iters:int -> Problem.t -> result
