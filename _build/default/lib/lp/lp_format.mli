(** Reader/writer for the CPLEX LP file format (linear objective, linear
    constraints, bounds, binary and general-integer sections). *)

exception Format_error of string

val to_string : Problem.t -> string
val to_file : Problem.t -> string -> unit

(** @raise Format_error on malformed input. *)
val of_string : string -> Problem.t

(** @raise Format_error on malformed input; @raise Sys_error on I/O. *)
val of_file : string -> Problem.t
