(** Linear / binary-integer program builder (minimization form):

    {v
      minimize    c'x + offset
      subject to  a_i x (<= | = | >=) b_i
                  l <= x <= u,   marked variables binary/integer
    v} *)

type var_kind = Continuous | Binary | Integer
type sense = Le | Ge | Eq

type var = {
  mutable obj : float;
  mutable lb : float;
  mutable ub : float;
  kind : var_kind;
  vname : string;
}

type row = {
  coeffs : (int * float) array;  (** sorted by variable, deduplicated *)
  sense : sense;
  mutable rhs : float;
  rname : string;
}

type t

val create : unit -> t
val nvars : t -> int
val nrows : t -> int

(** Add a variable, returning its id (dense, starting at 0).  Binary
    variables are clamped to [0, 1].
    @raise Invalid_argument when [lb > ub]. *)
val add_var :
  ?kind:var_kind ->
  ?lb:float ->
  ?ub:float ->
  ?obj:float ->
  ?name:string ->
  t ->
  int

(** Add a constraint row; duplicate variable coefficients are merged.
    Returns the row id.  @raise Invalid_argument on unknown variables. *)
val add_row : ?name:string -> t -> (int * float) list -> sense -> float -> int

val set_obj : t -> int -> float -> unit

(** Add a constant to the objective (reported by evaluators, ignored by
    the simplex itself). *)
val add_obj_offset : t -> float -> unit

val obj_offset : t -> float
val set_bounds : t -> int -> lb:float -> ub:float -> unit
val var : t -> int -> var
val rows : t -> row array
val row : t -> int -> row
val set_rhs : t -> int -> float -> unit

(** Ids of binary/integer variables, ascending. *)
val integer_vars : t -> int list

(** [c'x + offset] for an assignment. *)
val objective_value : t -> float array -> float

(** Row and bound satisfaction within [tol]. *)
val feasible : ?tol:float -> t -> float array -> bool

val pp : t Fmt.t
