(* Physical plan trees.  Costs are cumulative (a node's cost includes its
   children).  [Slot] leaves appear only in INUM template plans: they stand
   for "access this table in this order" and carry zero cost. *)

open Sqlast

type agg_kind = Hash_agg | Sorted_agg | Plain_agg

(* What an INUM template requires from the access method that fills a
   slot.  [Nlj_inner] slots are probed [outer_rows] times through an index
   whose leading key column is the join column. *)
type slot_req =
  | Any_order
  | Ordered of string list
  | Nlj_inner of { join_col : string; outer_rows : float }

type t =
  | Seq_scan of { table : string; rows : float; cost : float }
  | Index_scan of {
      index : Storage.Index.t;
      table : string;
      rows : float;
      cost : float;
      covering : bool;
    }
  | Slot of { table : string; rows : float; req : slot_req }
  (* [inner] is the per-probe access: an [Index_scan] whose cost is the
     cost of one probe (direct plans), or a [Slot] with an [Nlj_inner]
     requirement (template plans). *)
  | Nest_loop of { outer : t; inner : t; rows : float; cost : float }
  | Hash_join of { build : t; probe : t; rows : float; cost : float }
  | Merge_join of { left : t; right : t; rows : float; cost : float }
  | Sort of { child : t; keys : Ast.col_ref list; rows : float; cost : float }
  | Aggregate of { child : t; kind : agg_kind; rows : float; cost : float }

let cost = function
  | Seq_scan s -> s.cost
  | Index_scan s -> s.cost
  | Slot _ -> 0.0
  | Nest_loop j -> j.cost
  | Hash_join j -> j.cost
  | Merge_join j -> j.cost
  | Sort s -> s.cost
  | Aggregate a -> a.cost

let rows = function
  | Seq_scan s -> s.rows
  | Index_scan s -> s.rows
  | Slot s -> s.rows
  | Nest_loop j -> j.rows
  | Hash_join j -> j.rows
  | Merge_join j -> j.rows
  | Sort s -> s.rows
  | Aggregate a -> a.rows

(* Leaf access nodes, left to right. *)
let rec leaves = function
  | Seq_scan _ | Index_scan _ | Slot _ as l -> [ l ]
  | Nest_loop j -> leaves j.outer @ leaves j.inner
  | Hash_join j -> leaves j.build @ leaves j.probe
  | Merge_join j -> leaves j.left @ leaves j.right
  | Sort s -> leaves s.child
  | Aggregate a -> leaves a.child

(* Indexes used anywhere in the plan. *)
let rec indexes_used = function
  | Seq_scan _ | Slot _ -> []
  | Index_scan s -> [ s.index ]
  | Nest_loop j -> indexes_used j.outer @ indexes_used j.inner
  | Hash_join j -> indexes_used j.build @ indexes_used j.probe
  | Merge_join j -> indexes_used j.left @ indexes_used j.right
  | Sort s -> indexes_used s.child
  | Aggregate a -> indexes_used a.child

(* Template slots (table, filtered rows, requirement), for INUM. *)
let rec slots = function
  | Seq_scan _ | Index_scan _ -> []
  | Slot s -> [ (s.table, s.rows, s.req) ]
  | Nest_loop j -> slots j.outer @ slots j.inner
  | Hash_join j -> slots j.build @ slots j.probe
  | Merge_join j -> slots j.left @ slots j.right
  | Sort s -> slots s.child
  | Aggregate a -> slots a.child

let rec pp ppf t =
  let open Fmt in
  match t with
  | Seq_scan s -> pf ppf "SeqScan(%s) rows=%.0f cost=%.1f" s.table s.rows s.cost
  | Index_scan s ->
      pf ppf "IndexScan(%a)%s rows=%.0f cost=%.1f" Storage.Index.pp s.index
        (if s.covering then " covering" else "")
        s.rows s.cost
  | Slot s ->
      pf ppf "Slot(%s%s) rows=%.0f" s.table
        (match s.req with
        | Any_order -> ""
        | Ordered o -> " order " ^ String.concat "," o
        | Nlj_inner { join_col; outer_rows } ->
            Printf.sprintf " nlj %s x%.0f" join_col outer_rows)
        s.rows
  | Nest_loop j ->
      pf ppf "@[<v 2>NestLoop rows=%.0f cost=%.1f@ %a@ inner: %a@]" j.rows
        j.cost pp j.outer pp j.inner
  | Hash_join j ->
      pf ppf "@[<v 2>HashJoin rows=%.0f cost=%.1f@ %a@ %a@]" j.rows j.cost pp
        j.build pp j.probe
  | Merge_join j ->
      pf ppf "@[<v 2>MergeJoin rows=%.0f cost=%.1f@ %a@ %a@]" j.rows j.cost pp
        j.left pp j.right
  | Sort s ->
      pf ppf "@[<v 2>Sort(%a) rows=%.0f cost=%.1f@ %a@]"
        (list ~sep:comma (fun ppf (c : Ast.col_ref) ->
             pf ppf "%s.%s" c.Ast.table c.Ast.column))
        s.keys s.rows s.cost pp s.child
  | Aggregate a ->
      pf ppf "@[<v 2>%s rows=%.0f cost=%.1f@ %a@]"
        (match a.kind with
        | Hash_agg -> "HashAgg"
        | Sorted_agg -> "SortedAgg"
        | Plain_agg -> "Agg")
        a.rows a.cost pp a.child
