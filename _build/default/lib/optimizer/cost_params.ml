(* Cost-model constants, PostgreSQL-flavoured: costs are in abstract units
   where one sequential page read is 1.0. *)

type t = {
  seq_page_cost : float;
  random_page_cost : float;
  cpu_tuple_cost : float;
  cpu_index_tuple_cost : float;
  cpu_operator_cost : float;
  (* Memory available to sorts and hashes, in pages; spilling multiplies
     the cost of these operators. *)
  work_mem_pages : int;
}

let default =
  {
    seq_page_cost = 1.0;
    random_page_cost = 4.0;
    cpu_tuple_cost = 0.01;
    cpu_index_tuple_cost = 0.005;
    cpu_operator_cost = 0.0025;
    work_mem_pages = 2048;
  }

(* n log2 n comparisons, with an extra spill factor when the input exceeds
   work_mem — one of the deliberate non-linearities of the model (the
   paper stresses that linear composability does NOT require a linear
   optimizer cost model; the non-linearity hides in the constants). *)
let sort_cost t ~rows ~width =
  if rows <= 1.0 then t.cpu_operator_cost
  else begin
    let comparisons = rows *. (log rows /. log 2.0) in
    let pages = rows *. float_of_int width /. float_of_int Catalog.Schema.page_size in
    let spill =
      if pages <= float_of_int t.work_mem_pages then 0.0
      else 2.0 *. pages *. t.seq_page_cost
    in
    (2.0 *. comparisons *. t.cpu_operator_cost) +. spill
  end

let hash_build_cost t ~rows ~width =
  let pages = rows *. float_of_int width /. float_of_int Catalog.Schema.page_size in
  let spill =
    if pages <= float_of_int t.work_mem_pages then 0.0
    else 2.0 *. pages *. t.seq_page_cost
  in
  (rows *. (t.cpu_operator_cost +. t.cpu_tuple_cost)) +. spill

let hash_probe_cost t ~rows = rows *. 2.0 *. t.cpu_operator_cost
