(* Access-path selection: the ways to read one table's filtered rows, with
   their costs and delivered sort orders.  This is also where INUM's gamma
   coefficients come from (cost of filling a template slot with an index). *)

open Sqlast

type path = {
  index : Storage.Index.t option;   (* None = sequential scan *)
  path_cost : float;
  output_order : string list;       (* full key of the index, [] for scans *)
  covering : bool;
}

(* Column names with equality predicates in [q] on [tbl_name]. *)
let equality_columns (q : Ast.query) tbl_name =
  List.filter_map
    (fun p ->
      if p.Ast.is_equality then Some p.Ast.pred_col.Ast.column else None)
    (Ast.table_predicates q tbl_name)

(* [satisfies ~eq_cols ~required output]: does a stream ordered by [output]
   also deliver [required]?  Equality-bound columns may be skipped inside
   the output order (all surviving rows share one value for them). *)
let satisfies ~eq_cols ~required output =
  let rec walk required output =
    match (required, output) with
    | [], _ -> true
    | _, [] -> false
    | r :: rs, o :: os ->
        if r = o then walk rs os
        else if List.mem o eq_cols then walk required os
        else false
  in
  walk required output

let seq_scan_cost (p : Cost_params.t) schema (q : Ast.query) tbl_name =
  let tbl = Catalog.Schema.find_table schema tbl_name in
  let pages = float_of_int (Catalog.Schema.table_pages tbl) in
  let rows = float_of_int tbl.Catalog.Schema.row_count in
  let npreds = List.length (Ast.table_predicates q tbl_name) in
  (pages *. p.seq_page_cost)
  +. (rows *. p.cpu_tuple_cost)
  +. (rows *. float_of_int npreds *. p.cpu_operator_cost)

let seq_scan p schema q tbl_name =
  {
    index = None;
    path_cost = seq_scan_cost p schema q tbl_name;
    output_order = [];
    covering = true;
  }

(* The seek prefix an index offers a query: leading key columns bound by
   equality predicates, then at most one range predicate.  Returns the
   combined selectivity of the matched predicates and how many were
   matched. *)
let seek_selectivity (q : Ast.query) tbl_name key_columns =
  let preds = Ast.table_predicates q tbl_name in
  let eq_on c =
    List.find_opt
      (fun pr -> pr.Ast.is_equality && pr.Ast.pred_col.Ast.column = c)
      preds
  in
  let range_on c =
    List.find_opt
      (fun pr -> (not pr.Ast.is_equality) && pr.Ast.pred_col.Ast.column = c)
      preds
  in
  let rec walk cols sel matched =
    match cols with
    | [] -> (sel, matched)
    | c :: rest -> (
        match eq_on c with
        | Some pr -> walk rest (sel *. pr.Ast.selectivity) (matched + 1)
        | None -> (
            match range_on c with
            | Some pr -> (sel *. pr.Ast.selectivity, matched + 1)
            | None -> (sel, matched)))
  in
  walk key_columns 1.0 0

(* Cost of reading the table through [ix] (a seek when predicates match a
   key prefix, otherwise a full index scan), filtering the remaining
   predicates, and fetching base rows when the index does not cover the
   query's columns on this table. *)
let index_path (p : Cost_params.t) schema (q : Ast.query) tbl_name ix =
  if Storage.Index.table ix <> tbl_name then None
  else begin
    let tbl = Catalog.Schema.find_table schema tbl_name in
    let rows = float_of_int tbl.Catalog.Schema.row_count in
    let needed = Ast.referenced_columns q tbl_name in
    let covering =
      Storage.Index.clustered ix
      || List.for_all
           (fun c -> List.mem c (Storage.Index.covered_columns ix))
           needed
    in
    let sel, matched = seek_selectivity q tbl_name (Storage.Index.key_columns ix) in
    let leaf_pages = float_of_int (Storage.Index.leaf_pages schema ix) in
    let height = float_of_int (Storage.Index.height schema ix) in
    let descend, scanned_frac =
      if matched > 0 then (height *. p.random_page_cost, sel) else (0.0, 1.0)
    in
    let leaf_io = scanned_frac *. leaf_pages *. p.seq_page_cost in
    let index_cpu = scanned_frac *. rows *. p.cpu_index_tuple_cost in
    let fetch =
      if covering then 0.0
      else scanned_frac *. rows *. p.random_page_cost
    in
    let residual_filter =
      (* Remaining predicates evaluated on the fetched rows. *)
      let npreds = List.length (Ast.table_predicates q tbl_name) in
      scanned_frac *. rows *. float_of_int (max 0 (npreds - matched))
      *. p.cpu_operator_cost
    in
    Some
      {
        index = Some ix;
        path_cost = descend +. leaf_io +. index_cpu +. fetch +. residual_filter;
        output_order = Storage.Index.key_columns ix;
        covering;
      }
  end

(* All access paths for [tbl_name] under configuration [config]. *)
let paths p schema q tbl_name config =
  let index_paths =
    List.filter_map
      (fun ix -> index_path p schema q tbl_name ix)
      (Storage.Config.on_table config tbl_name)
  in
  seq_scan p schema q tbl_name :: index_paths

(* Cost of one nested-loop probe into [tbl_name] through [index]: the
   index's leading key column must be the join column.  [None] when the
   index cannot serve the probe; probing without an index degenerates to a
   scan of the table per probe (finite but enormous). *)
let nlj_probe_cost (p : Cost_params.t) schema (q : Ast.query) tbl_name index
    ~join_col =
  let tbl = Catalog.Schema.find_table schema tbl_name in
  let rows = float_of_int tbl.Catalog.Schema.row_count in
  match index with
  | None -> Some (seq_scan_cost p schema q tbl_name)
  | Some ix -> (
      if Storage.Index.table ix <> tbl_name then None
      else
        match Storage.Index.key_columns ix with
        | lead :: _ when lead = join_col ->
            let col = Catalog.Schema.find_column tbl join_col in
            let ndv = float_of_int (max 1 col.Catalog.Schema.distinct) in
            let matched = max 1.0 (rows /. ndv) in
            let needed = Ast.referenced_columns q tbl_name in
            let covering =
              Storage.Index.clustered ix
              || List.for_all
                   (fun c -> List.mem c (Storage.Index.covered_columns ix))
                   needed
            in
            let height = float_of_int (Storage.Index.height schema ix) in
            Some
              ((height *. p.random_page_cost)
              +. (matched *. p.cpu_index_tuple_cost)
              +. (if covering then 0.0 else matched *. p.random_page_cost)
              +. matched
                 *. float_of_int (List.length (Ast.table_predicates q tbl_name))
                 *. p.cpu_operator_cost)
        | _ -> None)

(* Cost to satisfy an INUM slot — deliver the table's filtered rows in
   [required_order] — through [index] ([None] = no index on the table).
   Returns [None] (gamma = infinity per Lemma 1) when the access method
   cannot deliver the order; a trailing sort only applies to the scan,
   since a template slot instantiated with an incompatible index is
   declared infeasible by INUM's interesting-order validity rule. *)
let slot_cost (p : Cost_params.t) schema (q : Ast.query) tbl_name index
    ~required_order =
  let eq_cols = equality_columns q tbl_name in
  match index with
  | None ->
      let base = seq_scan_cost p schema q tbl_name in
      if required_order = [] then Some base
      else begin
        let rows = Card.filtered_rows schema q tbl_name in
        let width = Card.output_width schema q [ tbl_name ] in
        Some (base +. Cost_params.sort_cost p ~rows ~width)
      end
  | Some ix -> (
      match index_path p schema q tbl_name ix with
      | None -> None
      | Some path ->
          if satisfies ~eq_cols ~required:required_order path.output_order
          then Some path.path_cost
          else None)

(* Unified slot-filling cost dispatching on the template's requirement —
   this is gamma_qkia of the paper ([None] = infinite). *)
let slot_fill_cost p schema q tbl_name index (req : Plan.slot_req) =
  match req with
  | Plan.Any_order -> slot_cost p schema q tbl_name index ~required_order:[]
  | Plan.Ordered o -> slot_cost p schema q tbl_name index ~required_order:o
  | Plan.Nlj_inner { join_col; outer_rows } ->
      Option.map
        (fun c -> outer_rows *. c)
        (nlj_probe_cost p schema q tbl_name index ~join_col)
