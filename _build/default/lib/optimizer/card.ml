(* Cardinality and selectivity estimation with the classic System-R
   assumptions: attribute independence, uniform join containment. *)

open Sqlast

let column schema (c : Ast.col_ref) =
  let tbl = Catalog.Schema.find_table schema c.Ast.table in
  Catalog.Schema.find_column tbl c.Ast.column

(* Combined selectivity of the query's predicates on one table. *)
let table_selectivity (q : Ast.query) tbl_name =
  List.fold_left
    (fun acc p -> acc *. p.Ast.selectivity)
    1.0
    (Ast.table_predicates q tbl_name)

(* Rows of [tbl_name] surviving the query's local predicates. *)
let filtered_rows schema (q : Ast.query) tbl_name =
  let tbl = Catalog.Schema.find_table schema tbl_name in
  max 1.0
    (float_of_int tbl.Catalog.Schema.row_count *. table_selectivity q tbl_name)

(* Selectivity of an equi-join: 1 / max(ndv(left), ndv(right)). *)
let join_selectivity schema (j : Ast.join) =
  let dl = (column schema j.Ast.left).Catalog.Schema.distinct in
  let dr = (column schema j.Ast.right).Catalog.Schema.distinct in
  1.0 /. float_of_int (max 1 (max dl dr))

(* Distinct values of a column that survive filtering to [rows] rows:
   the standard min(ndv, rows) cap. *)
let distinct_after schema (c : Ast.col_ref) ~rows =
  let d = float_of_int (column schema c).Catalog.Schema.distinct in
  min d rows

(* Output cardinality of grouping [rows] input rows by [cols]. *)
let group_cardinality schema (cols : Ast.col_ref list) ~rows =
  match cols with
  | [] -> min rows 1.0
  | _ ->
      let product =
        List.fold_left
          (fun acc c -> acc *. distinct_after schema c ~rows)
          1.0 cols
      in
      max 1.0 (min rows product)

(* Cardinality of joining two intermediate results given the applicable
   join conjuncts. *)
let join_rows schema ~left_rows ~right_rows joins =
  let sel =
    List.fold_left (fun acc j -> acc *. join_selectivity schema j) 1.0 joins
  in
  max 1.0 (left_rows *. right_rows *. sel)

(* Output row width of the query restricted to [tables]: sum of referenced
   column widths (what flows through joins and sorts). *)
let output_width schema (q : Ast.query) tables =
  let width_of tbl_name =
    let tbl = Catalog.Schema.find_table schema tbl_name in
    List.fold_left
      (fun acc col ->
        acc + Catalog.Schema.column_width (Catalog.Schema.find_column tbl col))
      0
      (Ast.referenced_columns q tbl_name)
  in
  max 8 (List.fold_left (fun acc t -> acc + width_of t) 0 tables)
