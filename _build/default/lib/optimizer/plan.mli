(** Physical plan trees.  Node costs are cumulative (a node includes its
    children).  [Slot] leaves appear only in INUM template plans. *)

type agg_kind = Hash_agg | Sorted_agg | Plain_agg

(** What an INUM template requires from the access method filling a slot. *)
type slot_req =
  | Any_order
  | Ordered of string list
      (** the slot must deliver this column order *)
  | Nlj_inner of { join_col : string; outer_rows : float }
      (** the slot is probed [outer_rows] times on [join_col] *)

type t =
  | Seq_scan of { table : string; rows : float; cost : float }
  | Index_scan of {
      index : Storage.Index.t;
      table : string;
      rows : float;
      cost : float;
      covering : bool;
    }
  | Slot of { table : string; rows : float; req : slot_req }
  | Nest_loop of { outer : t; inner : t; rows : float; cost : float }
      (** [inner] is the per-probe access: an [Index_scan] whose cost is
          one probe (direct plans) or an [Nlj_inner] [Slot] (templates) *)
  | Hash_join of { build : t; probe : t; rows : float; cost : float }
  | Merge_join of { left : t; right : t; rows : float; cost : float }
  | Sort of { child : t; keys : Sqlast.Ast.col_ref list; rows : float; cost : float }
  | Aggregate of { child : t; kind : agg_kind; rows : float; cost : float }

(** Cumulative cost of the plan ([Slot] leaves contribute zero). *)
val cost : t -> float

(** Output cardinality estimate. *)
val rows : t -> float

(** Leaf access nodes, left to right. *)
val leaves : t -> t list

(** Indexes used anywhere in the plan (including nested-loop inners). *)
val indexes_used : t -> Storage.Index.t list

(** Template slots as (table, filtered rows, requirement), for INUM. *)
val slots : t -> (string * float * slot_req) list

val pp : t Fmt.t
