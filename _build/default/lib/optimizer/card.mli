(** Cardinality and selectivity estimation (System-R assumptions:
    attribute independence, containment of join values). *)

(** Resolve a column reference against the catalog.
    @raise Not_found when the table or column is unknown. *)
val column : Catalog.Schema.t -> Sqlast.Ast.col_ref -> Catalog.Schema.column

(** Product of the selectivities of the query's predicates on one table. *)
val table_selectivity : Sqlast.Ast.query -> string -> float

(** Rows of the table surviving the query's local predicates (>= 1). *)
val filtered_rows : Catalog.Schema.t -> Sqlast.Ast.query -> string -> float

(** Equi-join selectivity: [1 / max(ndv(left), ndv(right))]. *)
val join_selectivity : Catalog.Schema.t -> Sqlast.Ast.join -> float

(** Distinct values surviving a filter to [rows] rows: [min(ndv, rows)]. *)
val distinct_after : Catalog.Schema.t -> Sqlast.Ast.col_ref -> rows:float -> float

(** Output cardinality of grouping [rows] input rows by [cols]. *)
val group_cardinality :
  Catalog.Schema.t -> Sqlast.Ast.col_ref list -> rows:float -> float

(** Join output cardinality for the given applicable equi-join conjuncts. *)
val join_rows :
  Catalog.Schema.t ->
  left_rows:float ->
  right_rows:float ->
  Sqlast.Ast.join list ->
  float

(** Width in bytes of the tuples the query carries for [tables]. *)
val output_width : Catalog.Schema.t -> Sqlast.Ast.query -> string list -> int
