(** Access-path selection: the ways to read one table's filtered rows
    under a hypothetical index configuration, with their costs and
    delivered sort orders.  Also the source of INUM's gamma coefficients
    (the cost of filling a template slot with an index). *)

type path = {
  index : Storage.Index.t option;  (** [None] = sequential scan *)
  path_cost : float;
  output_order : string list;  (** full index key; [[]] for scans *)
  covering : bool;  (** no base-table lookup needed *)
}

(** [satisfies ~eq_cols ~required given]: does a stream ordered by [given]
    also deliver [required]?  Equality-bound columns may be skipped (all
    surviving rows share one value for them). *)
val satisfies :
  eq_cols:string list -> required:string list -> string list -> bool

(** Cost of a sequential scan plus predicate evaluation. *)
val seq_scan_cost :
  Cost_params.t -> Catalog.Schema.t -> Sqlast.Ast.query -> string -> float

(** The seek cost of reading the table through the index, filtering
    residual predicates and fetching base rows when not covering.  [None]
    when the index is on a different table. *)
val index_path :
  Cost_params.t ->
  Catalog.Schema.t ->
  Sqlast.Ast.query ->
  string ->
  Storage.Index.t ->
  path option

(** All access paths for the table under the configuration (sequential
    scan first). *)
val paths :
  Cost_params.t ->
  Catalog.Schema.t ->
  Sqlast.Ast.query ->
  string ->
  Storage.Config.t ->
  path list

(** Cost of one nested-loop probe through [index] on [join_col]; [None]
    when the index cannot serve the probe.  Probing without an index
    degenerates to a per-probe scan (finite but enormous). *)
val nlj_probe_cost :
  Cost_params.t ->
  Catalog.Schema.t ->
  Sqlast.Ast.query ->
  string ->
  Storage.Index.t option ->
  join_col:string ->
  float option

(** Cost of satisfying an ordered INUM slot through [index] ([None] = no
    index: scan plus sort).  [None] result = infinite gamma (the index
    cannot deliver the required order). *)
val slot_cost :
  Cost_params.t ->
  Catalog.Schema.t ->
  Sqlast.Ast.query ->
  string ->
  Storage.Index.t option ->
  required_order:string list ->
  float option

(** Unified slot-filling cost dispatching on the requirement — this is
    gamma_qkia of the paper ([None] = infinite). *)
val slot_fill_cost :
  Cost_params.t ->
  Catalog.Schema.t ->
  Sqlast.Ast.query ->
  string ->
  Storage.Index.t option ->
  Plan.slot_req ->
  float option
