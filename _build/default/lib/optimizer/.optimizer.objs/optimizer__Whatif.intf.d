lib/optimizer/whatif.mli: Catalog Cost_params Plan Sqlast Storage
