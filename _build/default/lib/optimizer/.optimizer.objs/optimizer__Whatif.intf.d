lib/optimizer/whatif.mli: Atomic Catalog Cost_params Plan Sqlast Storage
