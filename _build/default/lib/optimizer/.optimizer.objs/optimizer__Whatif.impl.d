lib/optimizer/whatif.ml: Access Array Ast Card Catalog Cost_params List Plan Sqlast Storage
