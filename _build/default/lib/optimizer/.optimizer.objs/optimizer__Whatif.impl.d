lib/optimizer/whatif.ml: Access Array Ast Atomic Card Catalog Cost_params List Plan Sqlast Storage
