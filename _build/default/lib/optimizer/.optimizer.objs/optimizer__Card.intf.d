lib/optimizer/card.mli: Catalog Sqlast
