lib/optimizer/plan.ml: Ast Fmt Printf Sqlast Storage String
