lib/optimizer/card.ml: Ast Catalog List Sqlast
