lib/optimizer/cost_params.ml: Catalog
