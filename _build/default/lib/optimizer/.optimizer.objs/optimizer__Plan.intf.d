lib/optimizer/plan.mli: Fmt Sqlast Storage
