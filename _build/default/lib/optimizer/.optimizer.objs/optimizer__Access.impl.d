lib/optimizer/access.ml: Ast Card Catalog Cost_params List Option Plan Sqlast Storage
