lib/optimizer/access.mli: Catalog Cost_params Plan Sqlast Storage
