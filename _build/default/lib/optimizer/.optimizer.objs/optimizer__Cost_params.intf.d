lib/optimizer/cost_params.mli:
