(** Cost-model constants, PostgreSQL-flavoured.  Costs are abstract units
    where one sequential page read is 1.0. *)

type t = {
  seq_page_cost : float;
  random_page_cost : float;
  cpu_tuple_cost : float;
  cpu_index_tuple_cost : float;
  cpu_operator_cost : float;
  work_mem_pages : int;
      (** memory for sorts/hashes, in pages; exceeding it adds spill I/O *)
}

val default : t

(** [sort_cost t ~rows ~width]: n·log n comparison cost plus spill I/O
    when the input exceeds [work_mem_pages] — deliberately non-linear. *)
val sort_cost : t -> rows:float -> width:int -> float

(** Cost of building a hash table over [rows] rows of [width] bytes. *)
val hash_build_cost : t -> rows:float -> width:int -> float

(** Cost of probing a hash table with [rows] rows. *)
val hash_probe_cost : t -> rows:float -> float
