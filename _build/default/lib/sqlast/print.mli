(** SQL text rendering.  Output round-trips through {!Parse}; predicate
    selectivities travel in [/*sel=...*/] hints. *)

val pp_col : Ast.col_ref Fmt.t
val pp_predicate : Ast.predicate Fmt.t
val pp_join : Ast.join Fmt.t
val pp_select_item : Ast.select_item Fmt.t
val pp_query : Ast.query Fmt.t
val pp_update : Ast.update Fmt.t
val pp_statement : Ast.statement Fmt.t
val pp_workload : Ast.workload Fmt.t
val statement_to_string : Ast.statement -> string
val cmp_to_string : Ast.comparison -> string
val agg_name : Ast.agg_fn -> string
