(* Abstract syntax for the SQL subset the advisor understands: conjunctive
   SELECT-PROJECT-JOIN queries with group-by, aggregation and order-by, plus
   single-table UPDATE statements.  Following the paper (§2) each statement
   references a given table at most once, and predicates carry their
   estimated selectivity (derived from catalog statistics at generation or
   parse time) so the optimizer never needs the actual data. *)

type col_ref = {
  table : string;  (* table name; aliases are resolved away *)
  column : string;
}

let col_ref table column = { table; column }

type comparison = Eq | Lt | Le | Gt | Ge | Between | Like

(* A conjunct restricting a single table.  [selectivity] is the estimated
   fraction of the table's rows that satisfy it. *)
type predicate = {
  pred_col : col_ref;
  cmp : comparison;
  selectivity : float;
  (* True when the comparison pins an exact value: an index with this
     column in its key prefix can continue matching subsequent key parts. *)
  is_equality : bool;
}

let predicate ?(selectivity = 0.1) pred_col cmp =
  if selectivity < 0.0 || selectivity > 1.0 then
    invalid_arg "Ast.predicate: selectivity out of [0,1]";
  { pred_col; cmp; selectivity; is_equality = (cmp = Eq) }

(* Equi-join between two tables. *)
type join = { left : col_ref; right : col_ref }

type direction = Asc | Desc

type agg_fn = Count | Sum | Avg | Min | Max

type select_item =
  | Col of col_ref
  | Agg of agg_fn * col_ref

type query = {
  query_id : int;
  tables : string list;                 (* referenced tables *)
  select : select_item list;
  predicates : predicate list;
  joins : join list;
  group_by : col_ref list;
  order_by : (col_ref * direction) list;
}

type update = {
  update_id : int;
  target : string;                      (* updated table *)
  set_columns : string list;            (* columns written *)
  where : predicate list;               (* selects tuples to update *)
}

type statement =
  | Select of query
  | Update of update

(* A workload statement with its weight f_q (frequency or DBA importance). *)
type weighted = { stmt : statement; weight : float }

type workload = weighted list

let statement_id = function
  | Select q -> q.query_id
  | Update u -> u.update_id

(* The paper models an update as a query shell (selecting the affected
   tuples) plus an update shell; [query_shell] is the former. *)
let query_shell (u : update) : query =
  {
    query_id = u.update_id;
    tables = [ u.target ];
    select = [ Col { table = u.target; column = List.hd u.set_columns } ];
    predicates = u.where;
    joins = [];
    group_by = [];
    order_by = [];
  }

let selects (w : workload) =
  List.filter_map
    (fun { stmt; weight } ->
      match stmt with
      | Select q -> Some (q, weight)
      | Update u -> Some (query_shell u, weight))
    w

let updates (w : workload) =
  List.filter_map
    (fun { stmt; weight } ->
      match stmt with Update u -> Some (u, weight) | Select _ -> None)
    w

(* Columns of [q] that belong to table [t], in each syntactic role. *)

let table_predicates q t =
  List.filter (fun p -> p.pred_col.table = t) q.predicates

let join_columns q t =
  List.filter_map
    (fun j ->
      if j.left.table = t then Some j.left
      else if j.right.table = t then Some j.right
      else None)
    q.joins

let referenced_columns q t =
  let of_item = function
    | Col c | Agg (_, c) -> if c.table = t then [ c.column ] else []
  in
  let cols =
    List.concat_map of_item q.select
    @ List.filter_map
        (fun p -> if p.pred_col.table = t then Some p.pred_col.column else None)
        q.predicates
    @ List.map (fun (c : col_ref) -> c.column) (join_columns q t)
    @ List.filter_map
        (fun (c : col_ref) -> if c.table = t then Some c.column else None)
        q.group_by
    @ List.filter_map
        (fun ((c : col_ref), _) -> if c.table = t then Some c.column else None)
        q.order_by
  in
  List.sort_uniq String.compare cols

let validate schema q =
  let check_col (c : col_ref) =
    match Catalog.Schema.find_table_opt schema c.table with
    | None -> Error (Printf.sprintf "unknown table %s" c.table)
    | Some tbl ->
        if Catalog.Schema.mem_column tbl c.column then Ok ()
        else Error (Printf.sprintf "unknown column %s.%s" c.table c.column)
  in
  let ( let* ) = Result.bind in
  let rec all = function
    | [] -> Ok ()
    | x :: rest ->
        let* () = check_col x in
        all rest
  in
  let* () =
    all
      (List.concat_map
         (fun t -> List.map (fun c -> col_ref t c) (referenced_columns q t))
         q.tables)
  in
  let* () =
    if List.for_all (fun t -> Catalog.Schema.find_table_opt schema t <> None)
         q.tables
    then Ok ()
    else Error "unknown table in FROM"
  in
  (* Each table referenced at most once (paper §2 simplification). *)
  let sorted = List.sort String.compare q.tables in
  let rec no_dup = function
    | a :: b :: _ when a = b -> Error ("table referenced twice: " ^ a)
    | _ :: rest -> no_dup rest
    | [] -> Ok ()
  in
  no_dup sorted
