(** Parser for the SQL subset rendered by {!Print}.  Literal constants are
    accepted and discarded; selectivities come from [/*sel=...*/] hints when
    present, otherwise from catalog statistics with standard optimizer
    defaults for unknown parameters. *)

exception Parse_error of string

(** Parse one SELECT or UPDATE statement (optionally ';'-terminated).
    @raise Parse_error on malformed input or unknown tables/columns. *)
val statement : Catalog.Schema.t -> string -> Ast.statement

(** Parse a script of ';'-separated statements. *)
val script : Catalog.Schema.t -> string -> Ast.statement list
