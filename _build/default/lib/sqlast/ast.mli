(** Abstract syntax for the SQL subset the advisor understands:
    conjunctive SELECT-PROJECT-JOIN queries with group-by, aggregation
    and order-by, plus single-table UPDATE statements.  Each statement
    references a given table at most once (the paper's §2
    simplification), and predicates carry their estimated selectivity so
    the optimizer never needs actual data. *)

type col_ref = { table : string; column : string }

val col_ref : string -> string -> col_ref

type comparison = Eq | Lt | Le | Gt | Ge | Between | Like

type predicate = {
  pred_col : col_ref;
  cmp : comparison;
  selectivity : float;  (** estimated fraction of rows satisfying it *)
  is_equality : bool;  (** pins an exact value (index prefix can extend) *)
}

(** @raise Invalid_argument when selectivity is outside [0, 1]. *)
val predicate : ?selectivity:float -> col_ref -> comparison -> predicate

(** Equi-join between two tables. *)
type join = { left : col_ref; right : col_ref }

type direction = Asc | Desc
type agg_fn = Count | Sum | Avg | Min | Max
type select_item = Col of col_ref | Agg of agg_fn * col_ref

type query = {
  query_id : int;
  tables : string list;
  select : select_item list;
  predicates : predicate list;
  joins : join list;
  group_by : col_ref list;
  order_by : (col_ref * direction) list;
}

type update = {
  update_id : int;
  target : string;
  set_columns : string list;
  where : predicate list;
}

type statement = Select of query | Update of update

(** A workload statement with its weight f_q. *)
type weighted = { stmt : statement; weight : float }

type workload = weighted list

val statement_id : statement -> int

(** The query shell of an update: the SELECT choosing the affected rows
    (paper §2's update model). *)
val query_shell : update -> query

(** SELECT statements and update query shells, with weights. *)
val selects : workload -> (query * float) list

val updates : workload -> (update * float) list

(** The query's predicates on one table. *)
val table_predicates : query -> string -> predicate list

(** The query's join columns belonging to one table. *)
val join_columns : query -> string -> col_ref list

(** All column names of one table the query touches (select, predicates,
    joins, group-by, order-by), sorted and deduplicated. *)
val referenced_columns : query -> string -> string list

(** Check tables/columns exist and no table is referenced twice. *)
val validate : Catalog.Schema.t -> query -> (unit, string) result
