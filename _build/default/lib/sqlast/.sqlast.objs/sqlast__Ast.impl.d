lib/sqlast/ast.ml: Catalog List Printf Result String
