lib/sqlast/parse.mli: Ast Catalog
