lib/sqlast/ast.mli: Catalog
