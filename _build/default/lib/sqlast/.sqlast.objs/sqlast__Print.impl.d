lib/sqlast/print.ml: Ast Fmt List
