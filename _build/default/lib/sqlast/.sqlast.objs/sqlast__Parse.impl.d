lib/sqlast/parse.ml: Array Ast Catalog Fmt List Option Printf String
