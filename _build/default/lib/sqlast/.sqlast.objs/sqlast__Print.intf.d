lib/sqlast/print.mli: Ast Fmt
