(* The constraint language for constrained physical-design tuning, after
   Bruno & Chaudhuri (PVLDB 2008) as adopted by the paper (§3.2, App. E):

   - index constraints: linear assertions over per-index quantities
     (size, count, key width, arbitrary weights), optionally scoped to a
     subset of the candidates (the "filters" of the language);
   - the implicit rule of at most one clustered index per table;
   - mandatory / forbidden candidate sets;
   - query-cost constraints: cost(q, X) <= factor * cost(q, X0), possibly
     generated FOR q IN W (the language's generators);
   - soft constraints, which CoPhy explores along a Pareto curve instead
     of enforcing.

   Everything except query-cost caps linearizes to rows over the z
   variables (one per candidate index), per Appendix E. *)

type cmp = Le | Ge | Eq

type index_metric =
  | Size_bytes
  | Count
  | Key_width                       (* number of key columns *)
  | Custom of string * (Storage.Index.t -> float)

(* A named predicate restricting which candidates a constraint covers. *)
type scope = { scope_name : string; applies : Storage.Index.t -> bool }

let all_indexes = { scope_name = "all"; applies = (fun _ -> true) }

let on_table t =
  { scope_name = "table " ^ t; applies = (fun ix -> Storage.Index.table ix = t) }

let wide_indexes k =
  {
    scope_name = Printf.sprintf "width>=%d" k;
    applies = (fun ix -> List.length (Storage.Index.key_columns ix) >= k);
  }

let scope_and a b =
  {
    scope_name = a.scope_name ^ " & " ^ b.scope_name;
    applies = (fun ix -> a.applies ix && b.applies ix);
  }

type t =
  | Storage_budget of float           (* sum of sizes <= bytes *)
  | Index_sum of {
      scope : scope;
      metric : index_metric;
      cmp : cmp;
      bound : float;
    }
  | At_most_one_clustered
  | Mandatory of Storage.Index.t list
  | Forbidden of Storage.Index.t list
  | Query_cost_cap of {
      query_pred : int -> bool;       (* statement ids covered *)
      factor : float;                 (* w.r.t. the baseline configuration *)
    }
  | Udf of {
      udf_name : string;
      (* Black-box predicate over the selection (appendix E.5): not
         linearizable, enforced by rejecting candidate solutions inside
         the solver's search. *)
      accepts : Storage.Index.t array -> bool array -> bool;
    }

(* Generator: FOR q IN W ASSERT cost(q,X) <= factor cost(q,X0). *)
let for_all_queries factor =
  Query_cost_cap { query_pred = (fun _ -> true); factor }

let for_query qid factor =
  Query_cost_cap { query_pred = (fun id -> id = qid); factor }

type set = {
  hard : t list;
  soft : (string * t) list;           (* label, constraint *)
}

let empty = { hard = []; soft = [] }
let with_budget m = { hard = [ Storage_budget m; At_most_one_clustered ]; soft = [] }
let add_hard c set = { set with hard = c :: set.hard }
let add_soft ~label c set = { set with soft = (label, c) :: set.soft }

let metric_value schema metric ix =
  match metric with
  | Size_bytes -> Storage.Index.size_bytes schema ix
  | Count -> 1.0
  | Key_width -> float_of_int (List.length (Storage.Index.key_columns ix))
  | Custom (_, f) -> f ix

let metric_name = function
  | Size_bytes -> "size"
  | Count -> "count"
  | Key_width -> "key_width"
  | Custom (n, _) -> n

(* --- Classification --- *)

(* Constraints over z only can be linearized without the full BIP. *)
let z_only = function
  | Storage_budget _ | Index_sum _ | At_most_one_clustered | Mandatory _
  | Forbidden _ ->
      true
  | Query_cost_cap _ | Udf _ -> false

let is_udf = function Udf _ -> true | _ -> false

(* Combined black-box acceptance predicate of a constraint list. *)
let udf_acceptance candidates cs =
  let udfs =
    List.filter_map
      (function Udf { accepts; _ } -> Some accepts | _ -> None)
      cs
  in
  fun z -> List.for_all (fun accepts -> accepts candidates z) udfs

(* --- Linearization over the z variables --- *)

type z_row = {
  row_coeffs : (int * float) list;    (* candidate position, coefficient *)
  row_cmp : cmp;
  row_rhs : float;
  row_name : string;
}

(* Rows over positions in [candidates] encoding one z-only constraint. *)
let linearize schema (candidates : Storage.Index.t array) = function
  | Storage_budget m ->
      [ {
          row_coeffs =
            Array.to_list
              (Array.mapi
                 (fun i ix -> (i, Storage.Index.size_bytes schema ix))
                 candidates);
          row_cmp = Le;
          row_rhs = m;
          row_name = "storage";
        } ]
  | Index_sum { scope; metric; cmp; bound } ->
      [ {
          row_coeffs =
            Array.to_list candidates
            |> List.mapi (fun i ix -> (i, ix))
            |> List.filter (fun (_, ix) -> scope.applies ix)
            |> List.map (fun (i, ix) -> (i, metric_value schema metric ix));
          row_cmp = cmp;
          row_rhs = bound;
          row_name = Printf.sprintf "%s(%s)" (metric_name metric) scope.scope_name;
        } ]
  | At_most_one_clustered ->
      let tables =
        Array.to_list candidates
        |> List.filter Storage.Index.clustered
        |> List.map Storage.Index.table
        |> List.sort_uniq String.compare
      in
      List.map
        (fun t ->
          {
            row_coeffs =
              Array.to_list candidates
              |> List.mapi (fun i ix -> (i, ix))
              |> List.filter (fun (_, ix) ->
                     Storage.Index.clustered ix && Storage.Index.table ix = t)
              |> List.map (fun (i, _) -> (i, 1.0));
            row_cmp = Le;
            row_rhs = 1.0;
            row_name = "clustered(" ^ t ^ ")";
          })
        tables
  | Mandatory ixs ->
      List.filter_map
        (fun ix ->
          let pos = ref (-1) in
          Array.iteri
            (fun i c -> if Storage.Index.equal c ix then pos := i)
            candidates;
          if !pos < 0 then None
          else
            Some
              {
                row_coeffs = [ (!pos, 1.0) ];
                row_cmp = Ge;
                row_rhs = 1.0;
                row_name = "mandatory " ^ Storage.Index.to_string ix;
              })
        ixs
  | Forbidden ixs ->
      List.filter_map
        (fun ix ->
          let pos = ref (-1) in
          Array.iteri
            (fun i c -> if Storage.Index.equal c ix then pos := i)
            candidates;
          if !pos < 0 then None
          else
            Some
              {
                row_coeffs = [ (!pos, 1.0) ];
                row_cmp = Le;
                row_rhs = 0.0;
                row_name = "forbidden " ^ Storage.Index.to_string ix;
              })
        ixs
  | Query_cost_cap _ ->
      invalid_arg "Constr.linearize: query-cost constraints need the full BIP"
  | Udf { udf_name; _ } ->
      invalid_arg
        ("Constr.linearize: black-box constraint " ^ udf_name
       ^ " is enforced inside the solver search")

(* All z-rows of a constraint list. *)
let linearize_all schema candidates cs =
  List.concat_map (linearize schema candidates) (List.filter z_only cs)

(* --- Direct evaluation on a configuration --- *)

let row_holds row (z : bool array) =
  let lhs =
    List.fold_left
      (fun acc (i, c) -> if z.(i) then acc +. c else acc)
      0.0 row.row_coeffs
  in
  match row.row_cmp with
  | Le -> lhs <= row.row_rhs +. 1e-9
  | Ge -> lhs >= row.row_rhs -. 1e-9
  | Eq -> abs_float (lhs -. row.row_rhs) <= 1e-9

(* [satisfied schema candidates z ~query_cost ~baseline_cost c]: evaluate a
   constraint against a selection [z] of [candidates].  Query-cost caps
   get per-statement costing callbacks. *)
let satisfied schema candidates (z : bool array)
    ~(query_cost : int -> float)      (* statement id -> cost under z *)
    ~(baseline_cost : int -> float)   (* statement id -> cost under X0 *)
    ~(statement_ids : int list) = function
  | Query_cost_cap { query_pred; factor } ->
      List.for_all
        (fun qid ->
          (not (query_pred qid))
          || query_cost qid <= (factor *. baseline_cost qid) +. 1e-6)
        statement_ids
  | Udf { accepts; _ } -> accepts candidates z
  | c -> List.for_all (fun row -> row_holds row z) (linearize schema candidates c)

let pp ppf = function
  | Storage_budget m -> Fmt.pf ppf "storage <= %.3g bytes" m
  | Index_sum { scope; metric; cmp; bound } ->
      Fmt.pf ppf "sum %s over %s %s %g" (metric_name metric) scope.scope_name
        (match cmp with Le -> "<=" | Ge -> ">=" | Eq -> "=")
        bound
  | At_most_one_clustered -> Fmt.string ppf "at most one clustered index per table"
  | Mandatory ixs ->
      Fmt.pf ppf "mandatory: %a" (Fmt.list ~sep:Fmt.comma Storage.Index.pp) ixs
  | Forbidden ixs ->
      Fmt.pf ppf "forbidden: %a" (Fmt.list ~sep:Fmt.comma Storage.Index.pp) ixs
  | Query_cost_cap { factor; _ } ->
      Fmt.pf ppf "for q in W: cost(q,X) <= %g cost(q,X0)" factor
  | Udf { udf_name; _ } -> Fmt.pf ppf "black-box constraint %s" udf_name
