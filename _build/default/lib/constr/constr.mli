(** The constraint language for constrained physical-design tuning, after
    Bruno & Chaudhuri (PVLDB 2008), as adopted by the paper (§3.2 and
    appendix E): index constraints with scopes/filters, the implicit
    clustered-index rule, mandatory/forbidden sets, query-cost caps with
    generators, and soft constraints (explored along a Pareto curve
    rather than enforced). *)

type cmp = Le | Ge | Eq

type index_metric =
  | Size_bytes
  | Count
  | Key_width
  | Custom of string * (Storage.Index.t -> float)

(** A named predicate restricting which candidates a constraint covers
    (the language's filters). *)
type scope = { scope_name : string; applies : Storage.Index.t -> bool }

val all_indexes : scope
val on_table : string -> scope

(** Indexes with at least [k] key columns. *)
val wide_indexes : int -> scope

val scope_and : scope -> scope -> scope

type t =
  | Storage_budget of float  (** total size <= bytes *)
  | Index_sum of {
      scope : scope;
      metric : index_metric;
      cmp : cmp;
      bound : float;
    }  (** e.g. "at most 2 indexes with >= 5 columns on lineitem" *)
  | At_most_one_clustered
  | Mandatory of Storage.Index.t list
  | Forbidden of Storage.Index.t list
  | Query_cost_cap of { query_pred : int -> bool; factor : float }
      (** cost(q, X) <= factor * cost(q, X0) for covered statement ids *)
  | Udf of {
      udf_name : string;
      accepts : Storage.Index.t array -> bool array -> bool;
    }
      (** black-box predicate over the selection (appendix E.5), enforced
          by rejecting candidate solutions inside the solver's search *)

(** Generator: FOR q IN W ASSERT cost(q,X) <= factor * cost(q,X0). *)
val for_all_queries : float -> t

val for_query : int -> float -> t

type set = { hard : t list; soft : (string * t) list }

val empty : set

(** Budget + the implicit clustered rule. *)
val with_budget : float -> set

val add_hard : t -> set -> set
val add_soft : label:string -> t -> set -> set

val metric_value : Catalog.Schema.t -> index_metric -> Storage.Index.t -> float

(** True for constraints expressible as rows over the z variables alone
    (everything except query-cost caps and black-box predicates). *)
val z_only : t -> bool

val is_udf : t -> bool

(** Conjunction of the black-box predicates in the list, as one
    acceptance function over selections. *)
val udf_acceptance :
  Storage.Index.t array -> t list -> bool array -> bool

(** A linear row over candidate positions. *)
type z_row = {
  row_coeffs : (int * float) list;
  row_cmp : cmp;
  row_rhs : float;
  row_name : string;
}

(** Linearize one z-only constraint over the candidate array.
    @raise Invalid_argument on query-cost caps (those need the full BIP). *)
val linearize : Catalog.Schema.t -> Storage.Index.t array -> t -> z_row list

(** All rows of the z-only constraints in the list. *)
val linearize_all :
  Catalog.Schema.t -> Storage.Index.t array -> t list -> z_row list

(** Does a selection satisfy the row? *)
val row_holds : z_row -> bool array -> bool

(** Evaluate any constraint against a selection; query-cost caps use the
    provided costing callbacks. *)
val satisfied :
  Catalog.Schema.t ->
  Storage.Index.t array ->
  bool array ->
  query_cost:(int -> float) ->
  baseline_cost:(int -> float) ->
  statement_ids:int list ->
  t ->
  bool

val pp : t Fmt.t
