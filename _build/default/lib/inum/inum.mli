(** INUM — the fast what-if layer (Papadomanolakis, Dash & Ailamaki, VLDB
    2007) rebuilt over this repository's optimizer.

    A per-query cache of {e template plans}: physical plans whose
    base-table accesses are abstract slots.  A template carries its
    internal-operator cost [beta]; the cost of filling a slot with a
    concrete index is [gamma] (infinite when the index cannot satisfy the
    slot's requirement).  [cost q X = min over templates and atomic
    configurations of beta + sum gamma] — the linearly composable form of
    the paper's Definition 1, which is what turns index tuning into a
    compact BIP (Theorem 1). *)

type template = {
  beta : float;  (** internal plan cost (joins, sorts, aggregation) *)
  slot_reqs : Optimizer.Plan.slot_req array;
      (** per referenced table, aligned with [tables] *)
  plan : Optimizer.Plan.t;  (** the template plan, with [Slot] leaves *)
}

type t
(** The INUM cache of one query. *)

(** Build the cache by probing the optimizer once per interesting-order /
    nested-loop spec combination (the "few carefully selected what-if
    calls" of the paper). *)
val build : Optimizer.Whatif.env -> Sqlast.Ast.query -> t

val query : t -> Sqlast.Ast.query
val templates : t -> template list
val template_count : t -> int

(** Tables referenced by the query, in slot order. *)
val tables : t -> string list

(** Optimizer calls spent building the cache. *)
val init_calls : t -> int

(** [gamma t k ~table index] — the cost of instantiating [table]'s slot in
    template [k] with [index] ([None] = no index).  [None] result encodes
    an infinite coefficient (incompatible requirement). *)
val gamma : t -> int -> table:string -> Storage.Index.t option -> float option

(** INUM's approximation of [cost (q, X)]: an upper bound on (and in this
    implementation, typically equal to) the direct what-if cost. *)
val cost : t -> Storage.Config.t -> float

(** The (cost, template index, per-table index picks) the minimum is
    attained at — for explain output. *)
val best_instantiation :
  t -> Storage.Config.t -> float * int * Storage.Index.t option array

(** Caches for a whole workload: SELECTs and update query shells, plus the
    update statements for maintenance costing. *)
type workload_cache = {
  selects : (Sqlast.Ast.query * float * t) list;
  updates : (Sqlast.Ast.update * float) list;
  total_init_calls : int;
}

(** Build the caches for every SELECT in the workload, fanning statement
    cache construction over up to [jobs] domains (default
    {!Runtime.recommended_jobs}).  Statement order and
    [total_init_calls] are independent of [jobs]; [jobs:1] runs entirely
    on the calling domain.  When [stats] is given, accumulates
    INUM probe / template counters into it. *)
val build_workload :
  ?jobs:int ->
  ?stats:Runtime.Stats.t ->
  Optimizer.Whatif.env ->
  Sqlast.Ast.workload ->
  workload_cache

(** Total INUM-approximated workload cost under a configuration, including
    index maintenance and base-update costs. *)
val workload_cost :
  Optimizer.Whatif.env -> workload_cache -> Storage.Config.t -> float
