(* Tests for the what-if optimizer substrate: the cost model, access-path
   selection, join planning, and update costing. *)

open Sqlast

let schema = Catalog.Tpch.schema ()
let params = Optimizer.Cost_params.default

let env () = Optimizer.Whatif.make_env schema

let ix ?clustered ?includes table keys =
  Storage.Index.create ?clustered ?includes ~table keys

let col = Ast.col_ref

let lineitem_scan_query ?(sel = 0.01) () =
  {
    Ast.query_id = 1;
    tables = [ "lineitem" ];
    select = [ Ast.Col (col "lineitem" "l_quantity") ];
    predicates =
      [ Ast.predicate ~selectivity:sel (col "lineitem" "l_shipdate") Ast.Eq ];
    joins = [];
    group_by = [];
    order_by = [];
  }

let join_query () =
  {
    Ast.query_id = 2;
    tables = [ "orders"; "lineitem" ];
    select =
      [ Ast.Col (col "orders" "o_orderdate");
        Ast.Agg (Ast.Sum, col "lineitem" "l_extendedprice") ];
    predicates =
      [ Ast.predicate ~selectivity:0.001 (col "orders" "o_orderdate") Ast.Eq ];
    joins =
      [ { Ast.left = col "orders" "o_orderkey";
          right = col "lineitem" "l_orderkey" } ];
    group_by = [ col "orders" "o_orderdate" ];
    order_by = [];
  }

(* --- Cost model primitives --- *)

let test_sort_cost_nonlinear () =
  let small = Optimizer.Cost_params.sort_cost params ~rows:1000.0 ~width:16 in
  let large = Optimizer.Cost_params.sort_cost params ~rows:100_000.0 ~width:16 in
  Alcotest.(check bool) "superlinear" true (large > 100.0 *. small);
  let spill =
    Optimizer.Cost_params.sort_cost params ~rows:1e8 ~width:200
  in
  Alcotest.(check bool) "spill adds io" true (spill > 2.0 *. 1e8 *. params.Optimizer.Cost_params.cpu_operator_cost)

let test_selectivity_combination () =
  let q = lineitem_scan_query ~sel:0.5 () in
  let rows = Optimizer.Card.filtered_rows schema q "lineitem" in
  Alcotest.(check (float 1.0)) "half the table" 3_000_000.0 rows

let test_join_selectivity () =
  let j = { Ast.left = col "orders" "o_orderkey"; right = col "lineitem" "l_orderkey" } in
  let sel = Optimizer.Card.join_selectivity schema j in
  Alcotest.(check (float 1e-12)) "1/max ndv" (1.0 /. 1_500_000.0) sel

let test_group_cardinality () =
  let g = Optimizer.Card.group_cardinality schema [ col "lineitem" "l_shipmode" ] ~rows:1e6 in
  Alcotest.(check (float 1e-9)) "7 modes" 7.0 g;
  let capped = Optimizer.Card.group_cardinality schema [ col "lineitem" "l_orderkey" ] ~rows:10.0 in
  Alcotest.(check (float 1e-9)) "capped by rows" 10.0 capped

(* --- Access paths --- *)

let test_seq_vs_index_selective () =
  let e = env () in
  let q = lineitem_scan_query ~sel:0.0001 () in
  let covering = ix ~includes:[ "l_quantity" ] "lineitem" [ "l_shipdate" ] in
  let c_scan = Optimizer.Whatif.cost e q Storage.Config.empty in
  let c_ix = Optimizer.Whatif.cost e q (Storage.Config.of_list [ covering ]) in
  Alcotest.(check bool) "index much cheaper" true (c_ix < c_scan /. 50.0)

let test_unselective_prefers_scan () =
  let e = env () in
  let q = lineitem_scan_query ~sel:0.9 () in
  (* non-covering index on an unselective predicate: fetches would dominate *)
  let bad = ix "lineitem" [ "l_shipdate" ] in
  let plan = Optimizer.Whatif.optimize e q (Storage.Config.of_list [ bad ]) in
  Alcotest.(check bool) "plan uses no index" true
    (Optimizer.Plan.indexes_used plan = [])

let test_covering_avoids_fetch () =
  let e = env () in
  let q = lineitem_scan_query ~sel:0.05 () in
  let covering = ix ~includes:[ "l_quantity" ] "lineitem" [ "l_shipdate" ] in
  let noncovering = ix "lineitem" [ "l_shipdate" ] in
  let c_cov = Optimizer.Whatif.cost e q (Storage.Config.of_list [ covering ]) in
  let c_non = Optimizer.Whatif.cost e q (Storage.Config.of_list [ noncovering ]) in
  Alcotest.(check bool) "covering cheaper" true (c_cov < c_non)

let test_order_satisfaction_eq_skip () =
  (* index (a, b) with equality on a delivers order on b *)
  let sat =
    Optimizer.Access.satisfies ~eq_cols:[ "a" ] ~required:[ "b" ] [ "a"; "b" ]
  in
  Alcotest.(check bool) "eq-bound skip" true sat;
  let unsat =
    Optimizer.Access.satisfies ~eq_cols:[] ~required:[ "b" ] [ "a"; "b" ]
  in
  Alcotest.(check bool) "no skip without eq" false unsat

let test_composite_seek () =
  let e = env () in
  let q =
    { (lineitem_scan_query ~sel:0.01 ()) with
      Ast.predicates =
        [ Ast.predicate ~selectivity:0.01 (col "lineitem" "l_shipmode") Ast.Eq;
          Ast.predicate ~selectivity:0.1 (col "lineitem" "l_shipdate") Ast.Le ] }
  in
  let composite = ix ~includes:[ "l_quantity" ] "lineitem" [ "l_shipmode"; "l_shipdate" ] in
  let single = ix ~includes:[ "l_quantity" ] "lineitem" [ "l_shipmode" ] in
  let c2 = Optimizer.Whatif.cost e q (Storage.Config.of_list [ composite ]) in
  let c1 = Optimizer.Whatif.cost e q (Storage.Config.of_list [ single ]) in
  Alcotest.(check bool) "eq+range prefix beats eq only" true (c2 < c1)

(* --- Join planning --- *)

let test_join_plan_improves_with_index () =
  let e = env () in
  let q = join_query () in
  let c0 = Optimizer.Whatif.cost e q Storage.Config.empty in
  let cfg =
    Storage.Config.of_list
      [ ix ~includes:[ "o_orderdate" ] "orders" [ "o_orderdate" ];
        ix ~includes:[ "l_extendedprice" ] "lineitem" [ "l_orderkey" ] ]
  in
  let c1 = Optimizer.Whatif.cost e q cfg in
  Alcotest.(check bool) "indexes help join" true (c1 < c0);
  (* with a very selective outer, the optimizer should pick an
     index-nested-loop probing lineitem on l_orderkey *)
  let plan = Optimizer.Whatif.optimize e q cfg in
  let rec has_nlj = function
    | Optimizer.Plan.Nest_loop _ -> true
    | Optimizer.Plan.Hash_join { build; probe; _ } -> has_nlj build || has_nlj probe
    | Optimizer.Plan.Merge_join { left; right; _ } -> has_nlj left || has_nlj right
    | Optimizer.Plan.Sort { child; _ } | Optimizer.Plan.Aggregate { child; _ } ->
        has_nlj child
    | _ -> false
  in
  Alcotest.(check bool) "nlj chosen" true (has_nlj plan)

let test_whatif_counts_calls () =
  let e = env () in
  ignore (Optimizer.Whatif.cost e (join_query ()) Storage.Config.empty);
  ignore (Optimizer.Whatif.cost e (join_query ()) Storage.Config.empty);
  Alcotest.(check int) "two calls" 2 (Optimizer.Whatif.whatif_calls e);
  Optimizer.Whatif.reset_calls e;
  Alcotest.(check int) "reset" 0 (Optimizer.Whatif.whatif_calls e)

let test_plan_cost_cumulative () =
  let e = env () in
  let plan = Optimizer.Whatif.optimize e (join_query ()) Storage.Config.empty in
  let total = Optimizer.Plan.cost plan in
  let max_child = function
    | Optimizer.Plan.Hash_join { build; probe; _ } ->
        max (Optimizer.Plan.cost build) (Optimizer.Plan.cost probe)
    | Optimizer.Plan.Merge_join { left; right; _ } ->
        max (Optimizer.Plan.cost left) (Optimizer.Plan.cost right)
    | Optimizer.Plan.Sort { child; _ } | Optimizer.Plan.Aggregate { child; _ } ->
        Optimizer.Plan.cost child
    | Optimizer.Plan.Nest_loop { outer; _ } -> Optimizer.Plan.cost outer
    | _ -> 0.0
  in
  Alcotest.(check bool) "parent >= children" true (total >= max_child plan)

(* --- Update costs --- *)

let test_update_costs () =
  let e = env () in
  let u =
    { Ast.update_id = 5; target = "lineitem"; set_columns = [ "l_quantity" ];
      where =
        [ Ast.predicate ~selectivity:1e-6 (col "lineitem" "l_orderkey") Ast.Eq ] }
  in
  let touched = ix "lineitem" [ "l_quantity" ] in
  let untouched = ix "lineitem" [ "l_shipdate" ] in
  let other_table = ix "orders" [ "o_orderdate" ] in
  Alcotest.(check bool) "touched costs" true
    (Optimizer.Whatif.update_cost e u touched > 0.0);
  Alcotest.(check (float 0.0)) "untouched free" 0.0
    (Optimizer.Whatif.update_cost e u untouched);
  Alcotest.(check (float 0.0)) "other table free" 0.0
    (Optimizer.Whatif.update_cost e u other_table);
  (* statement cost grows as affected indexes are added *)
  let base_cfg = Storage.Config.of_list [ untouched ] in
  let more_cfg = Storage.Config.add touched base_cfg in
  let c1 = Optimizer.Whatif.statement_cost e (Ast.Update u) base_cfg in
  let c2 = Optimizer.Whatif.statement_cost e (Ast.Update u) more_cfg in
  Alcotest.(check bool) "maintenance adds up" true (c2 > c1)

(* --- Workload cost --- *)

let test_workload_cost_additive () =
  let e = env () in
  let q = lineitem_scan_query () in
  let w1 = [ { Ast.stmt = Ast.Select q; weight = 1.0 } ] in
  let w2 = [ { Ast.stmt = Ast.Select q; weight = 2.0 } ] in
  let c1 = Optimizer.Whatif.workload_cost e w1 Storage.Config.empty in
  let c2 = Optimizer.Whatif.workload_cost e w2 Storage.Config.empty in
  Alcotest.(check (float 1e-6)) "weights scale" (2.0 *. c1) c2

(* qcheck: adding indexes never hurts a SELECT (monotonicity of what-if) *)
let prop_more_indexes_never_hurt =
  QCheck.Test.make ~name:"what-if cost monotone in configuration" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let e = env () in
      let w = Workload.Gen.hom schema ~n:5 ~seed in
      let cands = Cophy.Cgen.generate w in
      let half =
        List.filteri (fun i _ -> i mod 2 = 0) cands |> Storage.Config.of_list
      in
      let full = Storage.Config.of_list cands in
      List.for_all
        (fun { Ast.stmt; _ } ->
          match stmt with
          | Ast.Select q ->
              Optimizer.Whatif.cost e q full
              <= Optimizer.Whatif.cost e q half +. 1e-6
          | Ast.Update _ -> true)
        w)

(* Properties of order satisfaction. *)
let order_gen =
  QCheck.Gen.(
    let col = map (fun i -> Printf.sprintf "c%d" i) (int_range 0 5) in
    triple (list_size (int_range 0 3) col) (list_size (int_range 0 4) col)
      (list_size (int_range 0 3) col))

let prop_satisfies_prefix_closed =
  QCheck.Test.make ~name:"order satisfaction closed under required-prefix"
    ~count:200 (QCheck.make order_gen)
    (fun (required, given, eq_cols) ->
      let sat = Optimizer.Access.satisfies ~eq_cols ~required given in
      (not sat)
      ||
      (* every prefix of [required] is also satisfied *)
      let rec prefixes acc = function
        | [] -> [ List.rev acc ]
        | x :: rest -> List.rev acc :: prefixes (x :: acc) rest
      in
      List.for_all
        (fun p -> Optimizer.Access.satisfies ~eq_cols ~required:p given)
        (prefixes [] required))

let prop_satisfies_monotone_eq =
  QCheck.Test.make ~name:"more equality columns never break satisfaction"
    ~count:200 (QCheck.make order_gen)
    (fun (required, given, eq_cols) ->
      let sat = Optimizer.Access.satisfies ~eq_cols ~required given in
      (not sat)
      || Optimizer.Access.satisfies ~eq_cols:("extra" :: eq_cols) ~required
           given)

let test_plan_pp_smoke () =
  let e = env () in
  let plan = Optimizer.Whatif.optimize e (join_query ()) Storage.Config.empty in
  let s = Fmt.str "%a" Optimizer.Plan.pp plan in
  Alcotest.(check bool) "renders" true (String.length s > 20)

let () =
  Alcotest.run "optimizer"
    [
      ( "cost_model",
        [
          Alcotest.test_case "sort nonlinear" `Quick test_sort_cost_nonlinear;
          Alcotest.test_case "selectivity" `Quick test_selectivity_combination;
          Alcotest.test_case "join selectivity" `Quick test_join_selectivity;
          Alcotest.test_case "group cardinality" `Quick test_group_cardinality;
        ] );
      ( "access",
        [
          Alcotest.test_case "selective index wins" `Quick test_seq_vs_index_selective;
          Alcotest.test_case "unselective scan wins" `Quick test_unselective_prefers_scan;
          Alcotest.test_case "covering beats fetch" `Quick test_covering_avoids_fetch;
          Alcotest.test_case "eq-skip order" `Quick test_order_satisfaction_eq_skip;
          Alcotest.test_case "composite seek" `Quick test_composite_seek;
        ] );
      ( "joins",
        [
          Alcotest.test_case "indexes help joins" `Quick test_join_plan_improves_with_index;
          Alcotest.test_case "what-if call counting" `Quick test_whatif_counts_calls;
          Alcotest.test_case "cumulative costs" `Quick test_plan_cost_cumulative;
        ] );
      ( "updates",
        [
          Alcotest.test_case "maintenance costs" `Quick test_update_costs;
          Alcotest.test_case "workload additivity" `Quick test_workload_cost_additive;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_more_indexes_never_hurt;
          QCheck_alcotest.to_alcotest prop_satisfies_prefix_closed;
          QCheck_alcotest.to_alcotest prop_satisfies_monotone_eq;
          Alcotest.test_case "plan printing" `Quick test_plan_pp_smoke;
        ] );
    ]
