(* Tests for the workload generators. *)

open Sqlast

let schema = Catalog.Tpch.schema ()

let test_hom_counts_and_templates () =
  let w = Workload.Gen.hom schema ~n:30 ~seed:1 in
  Alcotest.(check int) "30 statements" 30 (List.length w);
  (* statements cycle over the 15 templates: ids 1..30, tables repeat *)
  let tables_of i =
    match (List.nth w i).Ast.stmt with
    | Ast.Select q -> q.Ast.tables
    | Ast.Update _ -> []
  in
  Alcotest.(check (list string)) "template cycle" (tables_of 0) (tables_of 15)

let test_hom_deterministic () =
  let w1 = Workload.Gen.hom schema ~n:10 ~seed:42 in
  let w2 = Workload.Gen.hom schema ~n:10 ~seed:42 in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "identical"
        (Print.statement_to_string a.Ast.stmt)
        (Print.statement_to_string b.Ast.stmt))
    w1 w2;
  let w3 = Workload.Gen.hom schema ~n:10 ~seed:43 in
  let differs =
    List.exists2
      (fun a b ->
        Print.statement_to_string a.Ast.stmt
        <> Print.statement_to_string b.Ast.stmt)
      w1 w3
  in
  Alcotest.(check bool) "seed matters" true differs

let test_all_statements_valid () =
  let check w =
    List.iter
      (fun { Ast.stmt; _ } ->
        match stmt with
        | Ast.Select q -> (
            match Ast.validate schema q with
            | Ok () -> ()
            | Error e -> Alcotest.failf "invalid query: %s" e)
        | Ast.Update u -> (
            match Ast.validate schema (Ast.query_shell u) with
            | Ok () -> ()
            | Error e -> Alcotest.failf "invalid update shell: %s" e))
      w
  in
  check (Workload.Gen.hom schema ~n:45 ~seed:5);
  check (Workload.Gen.het schema ~n:45 ~seed:5);
  check
    (Workload.Gen.hom schema ~n:45 ~seed:5
    |> Workload.Gen.with_updates schema ~fraction:0.3 ~seed:5)

let test_het_diversity () =
  let w = Workload.Gen.het schema ~n:60 ~seed:9 in
  (* heterogeneous workloads should show many distinct table sets *)
  let signatures =
    List.filter_map
      (fun { Ast.stmt; _ } ->
        match stmt with
        | Ast.Select q -> Some (List.sort compare q.Ast.tables)
        | Ast.Update _ -> None)
      w
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "many table-set shapes" true
    (List.length signatures > 8)

let test_het_connected_joins () =
  let w = Workload.Gen.het schema ~n:60 ~seed:11 in
  List.iter
    (fun { Ast.stmt; _ } ->
      match stmt with
      | Ast.Select q ->
          (* joins connect the table set: #joins = #tables - 1 *)
          Alcotest.(check int) "spanning joins"
            (List.length q.Ast.tables - 1)
            (List.length q.Ast.joins)
      | Ast.Update _ -> ())
    w

let test_with_updates_fraction () =
  let w = Workload.Gen.hom schema ~n:200 ~seed:2 in
  let wu = Workload.Gen.with_updates schema ~fraction:0.25 ~seed:2 w in
  let n_upd =
    List.length (List.filter (fun s -> match s.Ast.stmt with Ast.Update _ -> true | _ -> false) wu)
  in
  Alcotest.(check bool) "about a quarter" true (n_upd > 25 && n_upd < 80);
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Gen.with_updates: fraction out of [0,1]") (fun () ->
      ignore (Workload.Gen.with_updates schema ~fraction:1.5 ~seed:1 w))

let test_skew_changes_selectivities () =
  let skewed = Catalog.Tpch.schema ~z:2.0 () in
  let sel_product w =
    List.fold_left
      (fun acc { Ast.stmt; _ } ->
        match stmt with
        | Ast.Select q ->
            List.fold_left
              (fun acc p -> acc +. p.Ast.selectivity)
              acc q.Ast.predicates
        | Ast.Update _ -> acc)
      0.0 w
  in
  let s_uniform = sel_product (Workload.Gen.hom schema ~n:30 ~seed:4) in
  let s_skewed = sel_product (Workload.Gen.hom skewed ~n:30 ~seed:4) in
  Alcotest.(check bool) "skew shifts selectivities" true
    (abs_float (s_uniform -. s_skewed) > 1e-6)

let prop_selectivities_in_range =
  QCheck.Test.make ~name:"all selectivities within (0,1]" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let w =
        Workload.Gen.het schema ~n:20 ~seed
        @ Workload.Gen.hom schema ~n:20 ~seed
      in
      List.for_all
        (fun { Ast.stmt; _ } ->
          let preds =
            match stmt with
            | Ast.Select q -> q.Ast.predicates
            | Ast.Update u -> u.Ast.where
          in
          List.for_all
            (fun p -> p.Ast.selectivity > 0.0 && p.Ast.selectivity <= 1.0)
            preds)
        w)

let () =
  Alcotest.run "workload"
    [
      ( "hom",
        [
          Alcotest.test_case "counts and cycle" `Quick test_hom_counts_and_templates;
          Alcotest.test_case "deterministic" `Quick test_hom_deterministic;
        ] );
      ( "het",
        [
          Alcotest.test_case "diversity" `Quick test_het_diversity;
          Alcotest.test_case "connected joins" `Quick test_het_connected_joins;
        ] );
      ( "common",
        [
          Alcotest.test_case "validity" `Quick test_all_statements_valid;
          Alcotest.test_case "update mixing" `Quick test_with_updates_fraction;
          Alcotest.test_case "skew sensitivity" `Quick test_skew_changes_selectivities;
          QCheck_alcotest.to_alcotest prop_selectivities_in_range;
        ] );
    ]
