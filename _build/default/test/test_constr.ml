(* Tests for the constraint language and its linearization. *)

let schema = Catalog.Tpch.schema ()

let ix ?clustered table keys = Storage.Index.create ?clustered ~table keys

let candidates =
  [|
    ix "lineitem" [ "l_shipdate" ];
    ix "lineitem" [ "l_shipdate"; "l_quantity"; "l_extendedprice"; "l_discount"; "l_tax"; "l_shipmode" ];
    ix "orders" [ "o_orderdate" ];
    ix ~clustered:true "orders" [ "o_custkey" ];
    ix ~clustered:true "orders" [ "o_orderdate" ];
  |]

let test_storage_budget_row () =
  let rows = Constr.linearize schema candidates (Constr.Storage_budget 1e9) in
  Alcotest.(check int) "one row" 1 (List.length rows);
  let row = List.hd rows in
  Alcotest.(check int) "all candidates" 5 (List.length row.Constr.row_coeffs);
  List.iter
    (fun (i, c) ->
      Alcotest.(check (float 1.0)) "coefficient is size"
        (Storage.Index.size_bytes schema candidates.(i))
        c)
    row.Constr.row_coeffs

let test_index_sum_scoped () =
  let c =
    Constr.Index_sum
      { scope = Constr.on_table "lineitem"; metric = Constr.Count;
        cmp = Constr.Le; bound = 1.0 }
  in
  let rows = Constr.linearize schema candidates c in
  let row = List.hd rows in
  Alcotest.(check int) "only lineitem candidates" 2
    (List.length row.Constr.row_coeffs);
  (* selecting both lineitem indexes violates it *)
  let z = [| true; true; false; false; false |] in
  Alcotest.(check bool) "violated" false (Constr.row_holds row z);
  let z1 = [| true; false; false; false; false |] in
  Alcotest.(check bool) "satisfied" true (Constr.row_holds row z1)

let test_key_width_filter () =
  let c =
    Constr.Index_sum
      { scope = Constr.wide_indexes 5; metric = Constr.Count;
        cmp = Constr.Le; bound = 0.0 }
  in
  let rows = Constr.linearize schema candidates c in
  let row = List.hd rows in
  (* only the 6-column lineitem index is wide *)
  Alcotest.(check int) "one wide candidate" 1 (List.length row.Constr.row_coeffs);
  Alcotest.(check int) "it is candidate 1" 1 (fst (List.hd row.Constr.row_coeffs))

let test_clustered_rows () =
  let rows = Constr.linearize schema candidates Constr.At_most_one_clustered in
  (* only orders has clustered candidates -> one row with 2 entries *)
  Alcotest.(check int) "one table" 1 (List.length rows);
  let row = List.hd rows in
  Alcotest.(check int) "two clustered" 2 (List.length row.Constr.row_coeffs);
  let z_both = [| false; false; false; true; true |] in
  Alcotest.(check bool) "both clustered violates" false (Constr.row_holds row z_both)

let test_mandatory_forbidden () =
  let m = Constr.Mandatory [ candidates.(0) ] in
  let f = Constr.Forbidden [ candidates.(2) ] in
  let mrow = List.hd (Constr.linearize schema candidates m) in
  let frow = List.hd (Constr.linearize schema candidates f) in
  let z = [| true; false; false; false; false |] in
  Alcotest.(check bool) "mandatory ok" true (Constr.row_holds mrow z);
  Alcotest.(check bool) "forbidden ok" true (Constr.row_holds frow z);
  let z2 = [| false; false; true; false; false |] in
  Alcotest.(check bool) "mandatory violated" false (Constr.row_holds mrow z2);
  Alcotest.(check bool) "forbidden violated" false (Constr.row_holds frow z2);
  (* unknown indexes are ignored in linearization *)
  let unknown = Constr.Mandatory [ ix "part" [ "p_brand" ] ] in
  Alcotest.(check int) "unknown skipped" 0
    (List.length (Constr.linearize schema candidates unknown))

let test_query_cost_cap_evaluation () =
  let cap = Constr.Query_cost_cap { query_pred = (fun _ -> true); factor = 0.75 } in
  let sat =
    Constr.satisfied schema candidates [| false; false; false; false; false |]
      ~query_cost:(fun _ -> 50.0)
      ~baseline_cost:(fun _ -> 100.0)
      ~statement_ids:[ 1; 2 ] cap
  in
  Alcotest.(check bool) "under cap" true sat;
  let unsat =
    Constr.satisfied schema candidates [| false; false; false; false; false |]
      ~query_cost:(fun qid -> if qid = 2 then 90.0 else 10.0)
      ~baseline_cost:(fun _ -> 100.0)
      ~statement_ids:[ 1; 2 ] cap
  in
  Alcotest.(check bool) "over cap" false unsat

let test_generators () =
  (match Constr.for_all_queries 0.5 with
  | Constr.Query_cost_cap { query_pred; factor } ->
      Alcotest.(check (float 0.0)) "factor" 0.5 factor;
      Alcotest.(check bool) "covers all" true (query_pred 123)
  | _ -> Alcotest.fail "wrong constructor");
  match Constr.for_query 7 0.5 with
  | Constr.Query_cost_cap { query_pred; _ } ->
      Alcotest.(check bool) "only 7" true (query_pred 7 && not (query_pred 8))
  | _ -> Alcotest.fail "wrong constructor"

let test_classification_and_set () =
  Alcotest.(check bool) "budget is z-only" true
    (Constr.z_only (Constr.Storage_budget 1.0));
  Alcotest.(check bool) "cap is not" false
    (Constr.z_only (Constr.for_all_queries 0.5));
  let set =
    Constr.with_budget 5e8
    |> Constr.add_hard (Constr.Forbidden [ candidates.(0) ])
    |> Constr.add_soft ~label:"space" (Constr.Storage_budget 1e8)
  in
  Alcotest.(check int) "hard count" 3 (List.length set.Constr.hard);
  Alcotest.(check int) "soft count" 1 (List.length set.Constr.soft)

let test_linearize_rejects_caps () =
  Alcotest.check_raises "caps need full BIP"
    (Invalid_argument "Constr.linearize: query-cost constraints need the full BIP")
    (fun () ->
      ignore (Constr.linearize schema candidates (Constr.for_all_queries 0.5)))

(* linearization soundness: a selection satisfies the constraint object iff
   it satisfies all its rows *)
let prop_linearization_sound =
  QCheck.Test.make ~name:"linearize rows match direct semantics" ~count:100
    QCheck.(int_range 0 31)
    (fun mask ->
      let z = Array.init 5 (fun i -> mask land (1 lsl i) <> 0) in
      let budget_holds =
        let total =
          Array.to_list candidates
          |> List.mapi (fun i ix -> if z.(i) then Storage.Index.size_bytes schema ix else 0.0)
          |> List.fold_left ( +. ) 0.0
        in
        total <= 2e8
      in
      let rows = Constr.linearize schema candidates (Constr.Storage_budget 2e8) in
      List.for_all (fun r -> Constr.row_holds r z) rows = budget_holds)

let () =
  Alcotest.run "constr"
    [
      ( "linearize",
        [
          Alcotest.test_case "storage budget" `Quick test_storage_budget_row;
          Alcotest.test_case "scoped index sum" `Quick test_index_sum_scoped;
          Alcotest.test_case "key-width filter" `Quick test_key_width_filter;
          Alcotest.test_case "clustered" `Quick test_clustered_rows;
          Alcotest.test_case "mandatory/forbidden" `Quick test_mandatory_forbidden;
          Alcotest.test_case "caps rejected" `Quick test_linearize_rejects_caps;
          QCheck_alcotest.to_alcotest prop_linearization_sound;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "query cost caps" `Quick test_query_cost_cap_evaluation;
          Alcotest.test_case "generators" `Quick test_generators;
          Alcotest.test_case "classification" `Quick test_classification_and_set;
        ] );
    ]
