(* The parallel runtime: parallel_map's determinism contract (order
   preservation, sequential-path equivalence, exception propagation),
   the atomic stats counters under concurrent updates, and the monotonic
   clock. *)

exception Boom of int

let test_map_matches_sequential () =
  let arr = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = Array.map f arr in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        seq
        (Runtime.parallel_map ~jobs f arr))
    [ 1; 2; 4; 8 ]

let test_map_order_preserved () =
  (* Uneven per-element cost exercises the chunked cursor: late chunks
     may finish before early ones, but slots are written by index. *)
  let arr = Array.init 200 (fun i -> i) in
  let f i =
    if i mod 7 = 0 then begin
      let acc = ref 0 in
      for k = 0 to 20_000 do
        acc := !acc + k
      done;
      ignore !acc
    end;
    i * 2
  in
  Alcotest.(check (array int))
    "order" (Array.map f arr)
    (Runtime.parallel_map ~jobs:4 f arr)

let test_map_empty_and_singleton () =
  Alcotest.(check (array int))
    "empty" [||]
    (Runtime.parallel_map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int))
    "singleton" [| 43 |]
    (Runtime.parallel_map ~jobs:4 (fun x -> x + 1) [| 42 |])

let test_map_propagates_exception () =
  List.iter
    (fun jobs ->
      match
        Runtime.parallel_map ~jobs
          (fun i -> if i = 500 then raise (Boom i) else i)
          (Array.init 1000 (fun i -> i))
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom 500 -> ())
    [ 1; 4 ]

let test_map_usable_after_exception () =
  (* The pool must survive a failed section. *)
  (try
     ignore
       (Runtime.parallel_map ~jobs:4
          (fun i -> if i mod 3 = 0 then raise Exit else i)
          (Array.init 100 (fun i -> i)))
   with Exit -> ());
  Alcotest.(check (array int))
    "reusable"
    (Array.init 100 (fun i -> i + 1))
    (Runtime.parallel_map ~jobs:4 (fun i -> i + 1) (Array.init 100 (fun i -> i)))

let test_map_nested () =
  (* Nested parallel_map from worker context degrades to sequential but
     must still be correct. *)
  let out =
    Runtime.parallel_map ~jobs:4
      (fun i ->
        Array.fold_left ( + ) 0
          (Runtime.parallel_map ~jobs:4 (fun j -> i + j) (Array.init 10 Fun.id)))
      (Array.init 20 (fun i -> i))
  in
  Alcotest.(check (array int))
    "nested" (Array.init 20 (fun i -> (10 * i) + 45)) out

let test_stats_concurrent () =
  let st = Runtime.Stats.create () in
  ignore
    (Runtime.parallel_map ~jobs:4
       (fun _ ->
         Runtime.Stats.add_whatif_calls st 1;
         Runtime.Stats.add_inum_probes st 2)
       (Array.make 1000 ()));
  Alcotest.(check int) "whatif" 1000 (Runtime.Stats.whatif_calls st);
  Alcotest.(check int) "probes" 2000 (Runtime.Stats.inum_probes st);
  Runtime.Stats.reset st;
  Alcotest.(check int) "reset" 0 (Runtime.Stats.whatif_calls st)

let test_stats_stages_and_json () =
  let st = Runtime.Stats.create () in
  Runtime.Stats.add_stage_seconds st Runtime.Stats.Inum_build 1.5;
  Runtime.Stats.add_stage_seconds st Runtime.Stats.Inum_build 0.5;
  Alcotest.(check (float 1e-9))
    "accumulates" 2.0
    (Runtime.Stats.stage_seconds st Runtime.Stats.Inum_build);
  let v = Runtime.Stats.timed st Runtime.Stats.Solve (fun () -> 7) in
  Alcotest.(check int) "timed value" 7 v;
  Alcotest.(check bool)
    "timed accumulates" true
    (Runtime.Stats.stage_seconds st Runtime.Stats.Solve >= 0.0);
  let json = Runtime.Stats.to_json st in
  Alcotest.(check bool)
    "json shape" true
    (String.length json > 0
    && json.[0] = '{'
    && json.[String.length json - 1] = '}');
  (* stable keys future PRs parse *)
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (key ^ " present") true
        (let rec find i =
           i + String.length key <= String.length json
           && (String.sub json i (String.length key) = key || find (i + 1))
         in
         find 0))
    [ "\"counters\""; "\"stage_seconds\""; "\"whatif_calls\""; "\"inum_build\"" ]

let test_clock_monotonic () =
  let a = Runtime.Clock.now () in
  let b = Runtime.Clock.now () in
  Alcotest.(check bool) "non-decreasing" true (b >= a);
  Alcotest.(check bool) "non-negative" true (a >= 0.0)

let () =
  Alcotest.run "runtime"
    [
      ( "parallel_map",
        [
          Alcotest.test_case "matches sequential map" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "order preserved under uneven load" `Quick
            test_map_order_preserved;
          Alcotest.test_case "empty and singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "propagates exceptions" `Quick
            test_map_propagates_exception;
          Alcotest.test_case "pool survives exceptions" `Quick
            test_map_usable_after_exception;
          Alcotest.test_case "nested calls fall back" `Quick test_map_nested;
        ] );
      ( "stats",
        [
          Alcotest.test_case "concurrent counters" `Quick test_stats_concurrent;
          Alcotest.test_case "stage timers and json" `Quick
            test_stats_stages_and_json;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
    ]
