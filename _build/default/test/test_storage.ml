(* Tests for index definitions, size estimation, and configurations. *)

let schema = Catalog.Tpch.schema ()

let ix ?clustered ?includes table keys =
  Storage.Index.create ?clustered ?includes ~table keys

(* --- Index --- *)

let test_index_create () =
  let i = ix "lineitem" [ "l_shipdate"; "l_quantity" ] in
  Alcotest.(check (list string)) "key" [ "l_shipdate"; "l_quantity" ]
    (Storage.Index.key_columns i);
  Alcotest.(check bool) "not clustered" false (Storage.Index.clustered i);
  Alcotest.check_raises "empty key"
    (Invalid_argument "Index.create: empty key") (fun () ->
      ignore (ix "lineitem" []));
  Alcotest.check_raises "dup key"
    (Invalid_argument "Index.create: duplicate key column") (fun () ->
      ignore (ix "lineitem" [ "a"; "a" ]))

let test_includes_deduped () =
  let i =
    ix ~includes:[ "l_shipdate"; "l_tax"; "l_tax" ] "lineitem" [ "l_shipdate" ]
  in
  (* include columns overlapping the key are dropped; duplicates removed *)
  Alcotest.(check (list string)) "includes" [ "l_tax" ]
    (Storage.Index.include_columns i);
  Alcotest.(check (list string)) "covered" [ "l_shipdate"; "l_tax" ]
    (Storage.Index.covered_columns i)

let test_size_monotone_in_columns () =
  let narrow = ix "lineitem" [ "l_shipdate" ] in
  let wide = ix "lineitem" [ "l_shipdate"; "l_extendedprice"; "l_comment" ] in
  Alcotest.(check bool) "wider key bigger" true
    (Storage.Index.size_bytes schema wide > Storage.Index.size_bytes schema narrow);
  let covering = ix ~includes:[ "l_comment" ] "lineitem" [ "l_shipdate" ] in
  Alcotest.(check bool) "includes add size" true
    (Storage.Index.size_bytes schema covering > Storage.Index.size_bytes schema narrow)

let test_size_scales_with_rows () =
  let small = Catalog.Tpch.schema ~sf:0.1 () in
  let i = ix "lineitem" [ "l_shipdate" ] in
  Alcotest.(check bool) "smaller table smaller index" true
    (Storage.Index.size_bytes small i < Storage.Index.size_bytes schema i)

let test_height () =
  let i = ix "lineitem" [ "l_shipdate" ] in
  let h = Storage.Index.height schema i in
  Alcotest.(check bool) "height sane" true (h >= 1 && h <= 5);
  let tiny = ix "region" [ "r_name" ] in
  Alcotest.(check bool) "tiny index shallow" true
    (Storage.Index.height schema tiny <= h)

let test_affected_by_update () =
  let i = ix ~includes:[ "l_tax" ] "lineitem" [ "l_shipdate" ] in
  Alcotest.(check bool) "key col" true
    (Storage.Index.affected_by_update i ~set_columns:[ "l_shipdate" ]);
  Alcotest.(check bool) "include col" true
    (Storage.Index.affected_by_update i ~set_columns:[ "l_tax" ]);
  Alcotest.(check bool) "unrelated col" false
    (Storage.Index.affected_by_update i ~set_columns:[ "l_discount" ])

let test_validate () =
  Alcotest.(check bool) "valid" true
    (Storage.Index.validate schema (ix "lineitem" [ "l_shipdate" ]) = Ok ());
  Alcotest.(check bool) "bad table" true
    (Result.is_error (Storage.Index.validate schema (ix "nope" [ "x" ])));
  Alcotest.(check bool) "bad column" true
    (Result.is_error (Storage.Index.validate schema (ix "lineitem" [ "nope" ])))

let test_key_distinct () =
  let i = ix "lineitem" [ "l_shipmode" ] in
  Alcotest.(check (float 1e-9)) "7 ship modes" 7.0
    (Storage.Index.key_distinct schema i);
  let pk = ix "lineitem" [ "l_orderkey"; "l_linenumber" ] in
  (* capped by row count *)
  Alcotest.(check (float 1.0)) "capped" 6_000_000.0
    (Storage.Index.key_distinct schema pk)

(* --- Config --- *)

let test_config_set_ops () =
  let a = ix "lineitem" [ "l_shipdate" ] in
  let b = ix "orders" [ "o_orderdate" ] in
  let c = Storage.Config.of_list [ a; b; a ] in
  Alcotest.(check int) "dedup" 2 (Storage.Config.cardinal c);
  Alcotest.(check bool) "mem" true (Storage.Config.mem a c);
  let c' = Storage.Config.remove a c in
  Alcotest.(check int) "removed" 1 (Storage.Config.cardinal c');
  Alcotest.(check int) "on_table" 1
    (List.length (Storage.Config.on_table c "orders"))

let test_config_total_size () =
  let a = ix "lineitem" [ "l_shipdate" ] in
  let b = ix "orders" [ "o_orderdate" ] in
  let c = Storage.Config.of_list [ a; b ] in
  Alcotest.(check (float 1.0)) "sum of sizes"
    (Storage.Index.size_bytes schema a +. Storage.Index.size_bytes schema b)
    (Storage.Config.total_size schema c)

let test_clustered_valid () =
  let c1 = ix ~clustered:true "lineitem" [ "l_orderkey" ] in
  let c2 = ix ~clustered:true "lineitem" [ "l_shipdate" ] in
  Alcotest.(check bool) "one clustered ok" true
    (Storage.Config.clustered_valid (Storage.Config.of_list [ c1 ]));
  Alcotest.(check bool) "two clustered same table invalid" false
    (Storage.Config.clustered_valid (Storage.Config.of_list [ c1; c2 ]))

let test_atomic_configurations () =
  let a1 = ix "lineitem" [ "l_shipdate" ] in
  let a2 = ix "lineitem" [ "l_quantity" ] in
  let b1 = ix "orders" [ "o_orderdate" ] in
  let c = Storage.Config.of_list [ a1; a2; b1 ] in
  let atoms =
    Storage.Config.atomic_configurations c ~tables:[ "lineitem"; "orders" ]
  in
  (* (none | a1 | a2) x (none | b1) = 6 *)
  Alcotest.(check int) "count" 6 (List.length atoms);
  Alcotest.(check bool) "contains empty" true
    (List.exists Storage.Config.is_empty atoms);
  List.iter
    (fun atom ->
      Alcotest.(check bool) "at most one per table" true
        (List.length (Storage.Config.on_table atom "lineitem") <= 1))
    atoms

(* qcheck: size estimation is always positive and grows with includes *)
let prop_size_positive =
  QCheck.Test.make ~name:"index sizes positive and include-monotone" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let cands = Cophy.Cgen.random_candidates schema ~n:5 ~seed in
      List.for_all
        (fun i ->
          let s = Storage.Index.size_bytes schema i in
          s > 0.0
          &&
          let all_cols =
            let tbl = Catalog.Schema.find_table schema (Storage.Index.table i) in
            Array.to_list tbl.Catalog.Schema.columns
            |> List.map (fun c -> c.Catalog.Schema.col_name)
          in
          let covering =
            Storage.Index.create
              ~table:(Storage.Index.table i)
              ~includes:all_cols
              (Storage.Index.key_columns i)
          in
          Storage.Index.size_bytes schema covering >= s)
        cands)

let () =
  Alcotest.run "storage"
    [
      ( "index",
        [
          Alcotest.test_case "create" `Quick test_index_create;
          Alcotest.test_case "includes" `Quick test_includes_deduped;
          Alcotest.test_case "size monotone" `Quick test_size_monotone_in_columns;
          Alcotest.test_case "size vs rows" `Quick test_size_scales_with_rows;
          Alcotest.test_case "height" `Quick test_height;
          Alcotest.test_case "update impact" `Quick test_affected_by_update;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "key distinct" `Quick test_key_distinct;
          QCheck_alcotest.to_alcotest prop_size_positive;
        ] );
      ( "config",
        [
          Alcotest.test_case "set ops" `Quick test_config_set_ops;
          Alcotest.test_case "total size" `Quick test_config_total_size;
          Alcotest.test_case "clustered validity" `Quick test_clustered_valid;
          Alcotest.test_case "atomic configurations" `Quick test_atomic_configurations;
        ] );
    ]
