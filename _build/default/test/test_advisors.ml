(* Tests for the baseline advisors and the evaluation harness. *)

let schema = Catalog.Tpch.schema ()

let db_size = Catalog.Tpch.database_size schema

let workload ?(n = 6) ?(seed = 3) () = Workload.Gen.hom schema ~n ~seed

let x0 = Advisors.Eval.baseline_config ()

(* --- Eval --- *)

let test_baseline_config () =
  Alcotest.(check int) "8 clustered pks" 8 (Storage.Config.cardinal x0);
  Storage.Config.iter
    (fun ix -> Alcotest.(check bool) "clustered" true (Storage.Index.clustered ix))
    x0

let test_perf_metric () =
  let env = Optimizer.Whatif.make_env schema in
  let w = workload () in
  (* recommending nothing gives perf 0 *)
  Alcotest.(check (float 1e-9)) "empty rec" 0.0
    (Advisors.Eval.perf env w Storage.Config.empty ~baseline:x0);
  (* a genuinely useful configuration gives positive perf < 1 *)
  let useful = Storage.Config.of_list (Cophy.Cgen.generate w) in
  let p = Advisors.Eval.perf env w useful ~baseline:x0 in
  Alcotest.(check bool) "positive" true (p > 0.0 && p < 1.0)

(* --- Tool-B --- *)

let test_tool_b_respects_budget () =
  let env = Optimizer.Whatif.make_env schema in
  let budget = 0.3 *. db_size in
  let r = Advisors.Tool_b.solve env (workload ~n:10 ()) ~budget in
  Alcotest.(check bool) "within budget" true
    (Storage.Config.total_size schema r.Advisors.Eval.config <= budget +. 1.0);
  Alcotest.(check bool) "made what-if calls" true (r.Advisors.Eval.whatif_calls > 0)

let test_tool_b_compression_determinism () =
  let w = workload ~n:10 () in
  let r1 =
    Advisors.Tool_b.solve (Optimizer.Whatif.make_env schema) w ~budget:db_size
  in
  let r2 =
    Advisors.Tool_b.solve (Optimizer.Whatif.make_env schema) w ~budget:db_size
  in
  Alcotest.(check bool) "same seed, same result" true
    (Storage.Config.equal r1.Advisors.Eval.config r2.Advisors.Eval.config)

let test_tool_b_improves () =
  let env = Optimizer.Whatif.make_env schema in
  let w = workload ~n:10 () in
  let r = Advisors.Tool_b.solve env w ~budget:db_size in
  let p = Advisors.Eval.perf (Optimizer.Whatif.make_env schema) w r.Advisors.Eval.config ~baseline:x0 in
  Alcotest.(check bool) "positive improvement" true (p > 0.0)

(* --- Tool-A --- *)

let test_tool_a_respects_budget () =
  let env = Optimizer.Whatif.make_env schema in
  let budget = 0.3 *. db_size in
  let r = Advisors.Tool_a.solve env (workload ~n:6 ()) ~budget in
  Alcotest.(check bool) "within budget" true
    (Storage.Config.total_size schema r.Advisors.Eval.config <= budget +. 1.0)

let test_tool_a_improves () =
  let env = Optimizer.Whatif.make_env schema in
  let w = workload ~n:6 () in
  let r = Advisors.Tool_a.solve env w ~budget:db_size in
  let p = Advisors.Eval.perf (Optimizer.Whatif.make_env schema) w r.Advisors.Eval.config ~baseline:x0 in
  Alcotest.(check bool) "positive improvement" true (p > 0.0)

let test_tool_a_time_limit () =
  let env = Optimizer.Whatif.make_env schema in
  let options = { Advisors.Tool_a.default_options with Advisors.Tool_a.time_limit = 0.0 } in
  let r = Advisors.Tool_a.solve ~options env (workload ~n:6 ()) ~budget:(0.1 *. db_size) in
  Alcotest.(check bool) "reports timeout" true r.Advisors.Eval.timed_out

let test_merge_indexes () =
  let a =
    Storage.Index.create ~table:"lineitem" ~includes:[ "l_tax" ]
      [ "l_shipdate"; "l_quantity" ]
  in
  let b =
    Storage.Index.create ~table:"lineitem" ~includes:[ "l_discount" ]
      [ "l_shipdate"; "l_extendedprice" ]
  in
  let m = Advisors.Tool_a.merge_indexes a b in
  Alcotest.(check (list string)) "prefix preserved"
    [ "l_shipdate"; "l_quantity"; "l_extendedprice" ]
    (Storage.Index.key_columns m);
  Alcotest.(check bool) "includes unioned" true
    (List.mem "l_tax" (Storage.Index.include_columns m)
    && List.mem "l_discount" (Storage.Index.include_columns m))

(* --- ILP --- *)

let test_ilp_small () =
  let env = Optimizer.Whatif.make_env schema in
  let w = workload ~n:4 ~seed:5 () in
  let cands =
    Cophy.Cgen.generate w |> List.filteri (fun i _ -> i mod 5 = 0)
    |> Array.of_list
  in
  let options =
    { Advisors.Ilp.default_options with
      Advisors.Ilp.per_table_cap = 2; per_query_cap = 8 }
  in
  let r = Advisors.Ilp.solve ~options env w cands ~budget:(0.5 *. db_size) in
  Alcotest.(check bool) "configurations enumerated" true
    (r.Advisors.Ilp.configurations > 0);
  Alcotest.(check bool) "within budget" true
    (Storage.Config.total_size schema r.Advisors.Ilp.config
     <= (0.5 *. db_size) +. 1.0);
  Alcotest.(check bool) "build time recorded" true
    (r.Advisors.Ilp.timings.Advisors.Ilp.build_seconds >= 0.0)

let test_ilp_vs_cophy_quality () =
  (* on a tiny instance both formulations should find solutions of
     comparable quality *)
  let env = Optimizer.Whatif.make_env schema in
  let w = workload ~n:4 ~seed:5 () in
  let cands =
    Cophy.Cgen.generate w |> List.filteri (fun i _ -> i mod 5 = 0)
    |> Array.of_list
  in
  let budget = 0.5 *. db_size in
  let options =
    { Advisors.Ilp.default_options with
      Advisors.Ilp.per_table_cap = 3; per_query_cap = 16 }
  in
  let ri = Advisors.Ilp.solve ~options env w cands ~budget in
  let rc =
    Cophy.Advisor.advise ~candidates:(Array.to_list cands) schema w
      ~budget_fraction:0.5
  in
  let eval_env = Optimizer.Whatif.make_env schema in
  let p_ilp = Advisors.Eval.perf eval_env w ri.Advisors.Ilp.config ~baseline:x0 in
  let p_cophy = Advisors.Eval.perf eval_env w rc.Cophy.Advisor.config ~baseline:x0 in
  (* CoPhy searches the unpruned space: it should be at least as good,
     modulo its 5% gap *)
  Alcotest.(check bool)
    (Printf.sprintf "cophy (%.3f) >= ilp (%.3f) - slack" p_cophy p_ilp)
    true
    (p_cophy >= p_ilp -. 0.08)

let () =
  Alcotest.run "advisors"
    [
      ( "eval",
        [
          Alcotest.test_case "baseline" `Quick test_baseline_config;
          Alcotest.test_case "perf metric" `Quick test_perf_metric;
        ] );
      ( "tool_b",
        [
          Alcotest.test_case "budget" `Quick test_tool_b_respects_budget;
          Alcotest.test_case "deterministic" `Quick test_tool_b_compression_determinism;
          Alcotest.test_case "improves" `Quick test_tool_b_improves;
        ] );
      ( "tool_a",
        [
          Alcotest.test_case "budget" `Quick test_tool_a_respects_budget;
          Alcotest.test_case "improves" `Quick test_tool_a_improves;
          Alcotest.test_case "time limit" `Quick test_tool_a_time_limit;
          Alcotest.test_case "merge" `Quick test_merge_indexes;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "small instance" `Slow test_ilp_small;
          Alcotest.test_case "vs cophy" `Slow test_ilp_vs_cophy_quality;
        ] );
    ]
