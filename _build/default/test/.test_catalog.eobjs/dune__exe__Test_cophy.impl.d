test/test_cophy.ml: Alcotest Array Ast Catalog Constr Cophy Inum List Lp Optimizer Printf QCheck QCheck_alcotest Random Sqlast Storage Workload
