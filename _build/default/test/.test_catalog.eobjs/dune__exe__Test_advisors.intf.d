test/test_advisors.mli:
