test/test_optimizer.ml: Alcotest Ast Catalog Cophy Fmt List Optimizer Printf QCheck QCheck_alcotest Sqlast Storage String Workload
