test/test_inum.mli:
