test/test_runtime.ml: Alcotest Array Fun List Printf Runtime String
