test/test_storage.ml: Alcotest Array Catalog Cophy List QCheck QCheck_alcotest Result Storage
