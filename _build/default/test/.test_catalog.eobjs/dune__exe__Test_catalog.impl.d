test/test_catalog.ml: Alcotest Catalog List Printf QCheck QCheck_alcotest Schema Tpch Zipf
