test/test_inum.ml: Alcotest Array Ast Catalog Cophy Inum List Optimizer QCheck QCheck_alcotest Sqlast Storage Workload
