test/test_cophy.mli:
