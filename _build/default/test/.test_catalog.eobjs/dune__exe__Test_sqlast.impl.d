test/test_sqlast.ml: Alcotest Ast Catalog List Parse Print QCheck QCheck_alcotest Result Sqlast String Workload
