test/test_advisors.ml: Advisors Alcotest Array Catalog Cophy List Optimizer Printf Storage Workload
