test/test_runtime.mli:
