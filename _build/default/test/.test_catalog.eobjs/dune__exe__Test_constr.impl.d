test/test_constr.ml: Alcotest Array Catalog Constr List QCheck QCheck_alcotest Storage
