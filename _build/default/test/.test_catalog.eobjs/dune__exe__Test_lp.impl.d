test/test_lp.ml: Alcotest Array List Lp QCheck QCheck_alcotest Random
