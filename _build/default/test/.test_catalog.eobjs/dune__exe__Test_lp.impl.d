test/test_lp.ml: Alcotest Array List Lp Printf QCheck QCheck_alcotest Random
