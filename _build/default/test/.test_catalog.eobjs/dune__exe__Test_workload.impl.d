test/test_workload.ml: Alcotest Ast Catalog List Print QCheck QCheck_alcotest Sqlast Workload
