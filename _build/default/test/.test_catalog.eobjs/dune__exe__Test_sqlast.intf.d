test/test_sqlast.mli:
