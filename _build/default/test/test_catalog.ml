(* Tests for the catalog substrate: Zipf distributions, schema statistics,
   and the TPC-H instance. *)

open Catalog

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Zipf --- *)

let test_zipf_uniform () =
  let z = Zipf.create ~n:100 ~z:0.0 in
  check_float "uniform mass" 0.01 (Zipf.mass z 1);
  check_float "uniform mass tail" 0.01 (Zipf.mass z 100);
  check_float "uniform cumulative" 0.5 (Zipf.cumulative z 50);
  check_float "uniform eq sel" 0.01 (Zipf.equality_selectivity z)

let test_zipf_skewed () =
  let z = Zipf.create ~n:1000 ~z:1.0 in
  Alcotest.(check bool) "head heavier than tail" true
    (Zipf.mass z 1 > 100.0 *. Zipf.mass z 1000);
  Alcotest.(check bool) "eq sel exceeds uniform" true
    (Zipf.equality_selectivity z > 1.0 /. 1000.0)

let test_zipf_cumulative_monotone () =
  let z = Zipf.create ~n:500 ~z:2.0 in
  let prev = ref 0.0 in
  for r = 1 to 500 do
    let c = Zipf.cumulative z r in
    Alcotest.(check bool) "monotone" true (c >= !prev -. 1e-12);
    prev := c
  done;
  check_float ~eps:1e-6 "total mass" 1.0 (Zipf.cumulative z 500)

let test_zipf_interval () =
  let z = Zipf.create ~n:100 ~z:0.5 in
  let total =
    Zipf.interval_mass z ~lo:1 ~hi:30
    +. Zipf.interval_mass z ~lo:31 ~hi:100
  in
  check_float ~eps:1e-9 "partition" 1.0 total;
  check_float "empty interval" 0.0 (Zipf.interval_mass z ~lo:10 ~hi:9)

let test_zipf_quantile () =
  let z = Zipf.create ~n:100 ~z:1.0 in
  for i = 1 to 19 do
    let u = float_of_int i /. 20.0 in
    let r = Zipf.rank_of_quantile z u in
    Alcotest.(check bool) "quantile in range" true (r >= 1 && r <= 100);
    (* smallest rank whose cumulative reaches u *)
    Alcotest.(check bool) "cumulative reaches u" true (Zipf.cumulative z r >= u -. 1e-9);
    if r > 1 then
      Alcotest.(check bool) "predecessor below u" true
        (Zipf.cumulative z (r - 1) < u +. 1e-9)
  done

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be >= 1")
    (fun () -> ignore (Zipf.create ~n:0 ~z:1.0));
  Alcotest.check_raises "z<0" (Invalid_argument "Zipf.create: z must be >= 0")
    (fun () -> ignore (Zipf.create ~n:5 ~z:(-1.0)))

(* qcheck: large-n harmonic approximation stays close to exact summation *)
let prop_harmonic_tail =
  QCheck.Test.make ~name:"zipf cumulative is a valid CDF" ~count:100
    QCheck.(pair (int_range 1 50_000) (float_range 0.0 3.0))
    (fun (n, z) ->
      let d = Zipf.create ~n ~z in
      let c_half = Zipf.cumulative d (n / 2) in
      let c_full = Zipf.cumulative d n in
      c_half >= 0.0 && c_half <= c_full +. 1e-9 && abs_float (c_full -. 1.0) < 1e-6)

let prop_mass_sums =
  QCheck.Test.make ~name:"zipf masses sum to cumulative" ~count:50
    QCheck.(pair (int_range 1 200) (float_range 0.0 2.5))
    (fun (n, z) ->
      let d = Zipf.create ~n ~z in
      let sum = ref 0.0 in
      for r = 1 to n do
        sum := !sum +. Zipf.mass d r
      done;
      abs_float (!sum -. 1.0) < 1e-6)

(* --- Schema --- *)

let small_schema () =
  Schema.create "s"
    [
      Schema.table "t" ~rows:10_000
        [
          Schema.column ~distinct:10_000 "a" Schema.Int;
          Schema.column ~distinct:50 ~skew:1.0 "b" (Schema.Char 10);
        ];
    ]

let test_schema_lookup () =
  let s = small_schema () in
  let t = Schema.find_table s "t" in
  Alcotest.(check int) "rows" 10_000 t.Schema.row_count;
  Alcotest.(check string) "col" "a" (Schema.find_column t "a").Schema.col_name;
  Alcotest.(check bool) "mem" true (Schema.mem_column t "b");
  Alcotest.(check bool) "not mem" false (Schema.mem_column t "zz");
  Alcotest.(check bool) "find_table_opt none" true
    (Schema.find_table_opt s "nope" = None)

let test_schema_duplicates () =
  Alcotest.check_raises "dup column"
    (Invalid_argument "Schema.table: duplicate column a") (fun () ->
      ignore
        (Schema.table "t" ~rows:1
           [ Schema.column ~distinct:1 "a" Schema.Int;
             Schema.column ~distinct:1 "a" Schema.Int ]))

let test_schema_pages () =
  let s = small_schema () in
  let t = Schema.find_table s "t" in
  let width = Schema.row_width t in
  Alcotest.(check bool) "row width includes header" true (width > 14);
  let pages = Schema.table_pages t in
  Alcotest.(check bool) "pages positive" true (pages >= 1);
  (* 10000 rows * width bytes / 8192 *)
  let expect = (10_000 * width / 8192) + 1 in
  Alcotest.(check bool) "pages close" true (abs (pages - expect) <= 1)

let test_equality_selectivity_skew () =
  let s = small_schema () in
  let t = Schema.find_table s "t" in
  let a = Schema.find_column t "a" in
  let b = Schema.find_column t "b" in
  check_float ~eps:1e-9 "uniform pk" (1.0 /. 10_000.0) (Schema.equality_selectivity a);
  Alcotest.(check bool) "skewed col more selective mass" true
    (Schema.equality_selectivity b > 1.0 /. 50.0)

(* --- TPC-H --- *)

let test_tpch_shape () =
  let s = Tpch.schema () in
  Alcotest.(check int) "8 tables" 8 (List.length (Schema.tables s));
  let li = Schema.find_table s "lineitem" in
  Alcotest.(check int) "lineitem rows" 6_000_000 li.Schema.row_count;
  let o = Schema.find_table s "orders" in
  Alcotest.(check int) "orders rows" 1_500_000 o.Schema.row_count

let test_tpch_scaling () =
  let s = Tpch.schema ~sf:0.1 () in
  let li = Schema.find_table s "lineitem" in
  Alcotest.(check int) "lineitem sf 0.1" 600_000 li.Schema.row_count;
  let r = Schema.find_table s "region" in
  Alcotest.(check int) "region fixed" 5 r.Schema.row_count

let test_tpch_size () =
  let s = Tpch.schema () in
  let bytes = Tpch.database_size s in
  (* sf=1 is the paper's ~1GB database *)
  Alcotest.(check bool) "about 1GB" true (bytes > 0.5e9 && bytes < 2.5e9)

let test_tpch_skew_applied () =
  let s = Tpch.schema ~z:2.0 () in
  let li = Schema.find_table s "lineitem" in
  let c = Schema.find_column li "l_shipdate" in
  check_float "skew recorded" 2.0 c.Schema.skew;
  let pk = Schema.find_column li "l_linenumber" in
  check_float "keys stay uniform" 0.0 pk.Schema.skew

let test_tpch_primary_keys () =
  let s = Tpch.schema () in
  List.iter
    (fun (t, cols) ->
      let tbl = Schema.find_table s t in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "pk col %s.%s exists" t c)
            true (Schema.mem_column tbl c))
        cols)
    Tpch.primary_keys

let () =
  Alcotest.run "catalog"
    [
      ( "zipf",
        [
          Alcotest.test_case "uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "skewed" `Quick test_zipf_skewed;
          Alcotest.test_case "cumulative monotone" `Quick test_zipf_cumulative_monotone;
          Alcotest.test_case "interval mass" `Quick test_zipf_interval;
          Alcotest.test_case "quantiles" `Quick test_zipf_quantile;
          Alcotest.test_case "invalid args" `Quick test_zipf_invalid;
          QCheck_alcotest.to_alcotest prop_harmonic_tail;
          QCheck_alcotest.to_alcotest prop_mass_sums;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "duplicate detection" `Quick test_schema_duplicates;
          Alcotest.test_case "page estimation" `Quick test_schema_pages;
          Alcotest.test_case "skewed selectivity" `Quick test_equality_selectivity_skew;
        ] );
      ( "tpch",
        [
          Alcotest.test_case "shape" `Quick test_tpch_shape;
          Alcotest.test_case "scale factor" `Quick test_tpch_scaling;
          Alcotest.test_case "database size" `Quick test_tpch_size;
          Alcotest.test_case "skew" `Quick test_tpch_skew_applied;
          Alcotest.test_case "primary keys valid" `Quick test_tpch_primary_keys;
        ] );
    ]
