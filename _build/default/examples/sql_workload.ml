(* Tuning a workload written as SQL text: the parser front-end.

     dune exec examples/sql_workload.exe *)

let sql =
  {|
-- A reporting mix over TPC-H.
SELECT l_returnflag, l_linestatus, SUM(l_extendedprice), AVG(l_discount)
FROM lineitem
WHERE l_shipdate <= ? /*sel=0.95*/
GROUP BY lineitem.l_returnflag, lineitem.l_linestatus;

SELECT o_orderpriority, COUNT(o_orderkey)
FROM orders
WHERE o_orderdate BETWEEN ? AND ? /*sel=0.04*/
GROUP BY o_orderpriority
ORDER BY o_orderpriority;

SELECT c_name, c_acctbal
FROM customer
WHERE c_nationkey = 7 AND c_acctbal >= ? /*sel=0.02*/
ORDER BY c_acctbal DESC;

SELECT n_name, SUM(l_extendedprice)
FROM customer, orders, lineitem, nation
WHERE customer.c_custkey = orders.o_custkey
  AND orders.o_orderkey = lineitem.l_orderkey
  AND customer.c_nationkey = nation.n_nationkey
  AND o_orderdate >= ? /*sel=0.15*/
GROUP BY nation.n_name;

UPDATE partsupp SET ps_availqty = ? WHERE ps_partkey = ? /*sel=0.000005*/;
|}

let () =
  let schema = Catalog.Tpch.schema ~sf:1.0 () in
  Fmt.pr "=== Tuning a SQL-text workload ===@.";
  let statements = Sqlast.Parse.script schema sql in
  Fmt.pr "Parsed %d statements.@.@." (List.length statements);
  let workload =
    List.map (fun stmt -> { Sqlast.Ast.stmt; weight = 1.0 }) statements
  in
  (* echo them back through the printer *)
  Fmt.pr "%a@.@." Sqlast.Print.pp_workload workload;
  let baseline = Advisors.Eval.baseline_config () in
  let r = Cophy.Advisor.advise ~baseline schema workload ~budget_fraction:0.5 in
  Fmt.pr "Recommended indexes:@.";
  Storage.Config.iter
    (fun ix -> Fmt.pr "  CREATE INDEX ON %s@." (Storage.Index.to_string ix))
    r.Cophy.Advisor.config;
  let env = Optimizer.Whatif.make_env schema in
  Fmt.pr "@.Cost reduction vs baseline: %.1f%%@."
    (100.0 *. Advisors.Eval.perf env workload r.Cophy.Advisor.config ~baseline)
