(* Quickstart: tune indexes for a TPC-H-like workload in a few lines.

     dune exec examples/quickstart.exe

   Builds the TPC-H statistics catalog, generates a 60-statement workload
   (10% updates), asks CoPhy for a recommendation under a storage budget
   of 50% of the data size, and cross-checks the result against the
   what-if optimizer directly. *)

let () =
  (* The 1 GB TPC-H catalog (statistics only; no data is materialized). *)
  let schema = Catalog.Tpch.schema ~sf:1.0 ~z:0.0 () in

  (* A workload: 60 statements over the 15 homogeneous templates, with a
     tenth of them turned into UPDATEs. *)
  let workload =
    Workload.Gen.hom schema ~n:60 ~seed:42
    |> Workload.Gen.with_updates schema ~fraction:0.1 ~seed:42
  in

  (* The baseline configuration: clustered primary keys only. *)
  let baseline = Advisors.Eval.baseline_config () in

  (* Run the advisor: INUM -> CGen -> BIPGen -> Solver. *)
  let r = Cophy.Advisor.advise ~baseline schema workload ~budget_fraction:0.5 in

  Fmt.pr "=== CoPhy quickstart ===@.";
  Fmt.pr "Candidates examined : %d@." (Array.length r.Cophy.Advisor.candidates);
  Fmt.pr "BIP variables       : %d@."
    (Cophy.Sproblem.variable_count r.Cophy.Advisor.problem);
  Fmt.pr "Solve gap           : %.1f%%@."
    (100.0 *. r.Cophy.Advisor.report.Cophy.Solver.gap);
  Fmt.pr "Time (inum/build/solve): %.2fs / %.2fs / %.2fs@."
    r.Cophy.Advisor.timings.Cophy.Advisor.inum_seconds
    r.Cophy.Advisor.timings.Cophy.Advisor.build_seconds
    r.Cophy.Advisor.timings.Cophy.Advisor.solve_seconds;
  Fmt.pr "@.Recommended indexes (%d):@."
    (Storage.Config.cardinal r.Cophy.Advisor.config);
  Storage.Config.iter
    (fun ix ->
      Fmt.pr "  CREATE INDEX ON %s  -- %.1f MB@."
        (Storage.Index.to_string ix)
        (Storage.Index.size_bytes schema ix /. 1e6))
    r.Cophy.Advisor.config;

  (* Ground truth: evaluate with direct what-if optimization, never the
     advisor's own approximation (the paper's §5.1 methodology). *)
  let env = Optimizer.Whatif.make_env schema in
  let perf =
    Advisors.Eval.perf env workload r.Cophy.Advisor.config ~baseline
  in
  Fmt.pr "@.Workload cost reduction vs clustered-PK baseline: %.1f%%@."
    (100.0 *. perf);

  (* Show the chosen plan of one query before/after. *)
  (match Sqlast.Ast.selects workload with
  | (q, _) :: _ ->
      Fmt.pr "@.Example query:@.%a@.@." Sqlast.Print.pp_query q;
      let before = Optimizer.Whatif.optimize env q baseline in
      let after =
        Optimizer.Whatif.optimize env q
          (Storage.Config.union r.Cophy.Advisor.config baseline)
      in
      Fmt.pr "Plan before (cost %.0f):@.%a@.@." (Optimizer.Plan.cost before)
        Optimizer.Plan.pp before;
      Fmt.pr "Plan after (cost %.0f):@.%a@." (Optimizer.Plan.cost after)
        Optimizer.Plan.pp after
  | [] -> ())
