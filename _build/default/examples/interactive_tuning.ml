(* Interactive tuning: a DBA session that tweaks the problem and re-tunes
   incrementally (paper §4.2, Fig. 6b).

     dune exec examples/interactive_tuning.exe *)

let time label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Fmt.pr "%-42s %6.2fs@." label (Unix.gettimeofday () -. t0);
  r

let () =
  let schema = Catalog.Tpch.schema ~sf:1.0 () in
  let workload = Workload.Gen.hom schema ~n:60 ~seed:5 in
  let budget = 0.8 *. Catalog.Tpch.database_size schema in

  Fmt.pr "=== Interactive tuning session ===@.";
  let session = Cophy.Interactive.create schema workload ~budget in

  (* Initial recommendation: full solve. *)
  let r1 = time "initial recommendation" (fun () -> Cophy.Interactive.retune session) in
  Fmt.pr "  -> %d indexes, estimated cost %.0f (gap %.1f%%)@.@."
    (Storage.Config.cardinal r1.Cophy.Solver.config)
    r1.Cophy.Solver.objective
    (100.0 *. r1.Cophy.Solver.gap);

  (* The DBA suggests 25 additional candidate indexes; the solver
     warm-starts from the previous multipliers. *)
  let extra = Cophy.Cgen.random_candidates schema ~n:25 ~seed:123 in
  Cophy.Interactive.add_candidates session extra;
  let r2 = time "retune after +25 candidates (warm)" (fun () ->
      Cophy.Interactive.retune session)
  in
  Fmt.pr "  -> estimated cost %.0f@.@." r2.Cophy.Solver.objective;

  (* The budget is halved. *)
  Cophy.Interactive.set_budget session (budget /. 2.0);
  let r3 = time "retune after budget halved (warm)" (fun () ->
      Cophy.Interactive.retune session)
  in
  Fmt.pr "  -> %d indexes, estimated cost %.0f@.@."
    (Storage.Config.cardinal r3.Cophy.Solver.config)
    r3.Cophy.Solver.objective;

  (* Ten new statements arrive; INUM preprocesses only those. *)
  let delta = Workload.Gen.hom schema ~n:10 ~seed:99 in
  Cophy.Interactive.add_statements session delta;
  let r4 = time "retune after +10 statements (warm)" (fun () ->
      Cophy.Interactive.retune session)
  in
  Fmt.pr "  -> estimated cost %.0f@.@." r4.Cophy.Solver.objective;

  (* A forbidden-index rule is imposed through the constraint language. *)
  (match Cophy.Interactive.candidates session with
  | worst :: _ ->
      Cophy.Interactive.set_constraints session
        [ Constr.At_most_one_clustered; Constr.Forbidden [ worst ] ];
      let r5 = time "retune after forbidding an index" (fun () ->
          Cophy.Interactive.retune session)
      in
      Fmt.pr "  -> forbidden index selected? %b@."
        (Storage.Config.mem worst r5.Cophy.Solver.config)
  | [] -> ())
