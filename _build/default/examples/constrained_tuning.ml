(* Constrained physical-design tuning: the Bruno–Chaudhuri-style
   constraint language of the paper's §3.2 / Appendix E.

     dune exec examples/constrained_tuning.exe *)

let advise_with label schema workload constraints =
  let r =
    Cophy.Advisor.advise ~constraints
      ~baseline:(Advisors.Eval.baseline_config ()) schema workload
      ~budget_fraction:0.6
  in
  Fmt.pr "@.--- %s ---@." label;
  Fmt.pr "indexes=%d  est. cost=%.0f  storage=%.0f MB@."
    (Storage.Config.cardinal r.Cophy.Advisor.config)
    r.Cophy.Advisor.estimated_cost
    (Storage.Config.total_size schema r.Cophy.Advisor.config /. 1e6);
  r

let () =
  let schema = Catalog.Tpch.schema ~sf:1.0 () in
  let workload = Workload.Gen.hom schema ~n:30 ~seed:11 in

  Fmt.pr "=== Constrained tuning ===@.";

  (* 1. Unconstrained (beyond the implicit clustered rule + budget). *)
  let base = advise_with "storage budget only" schema workload Constr.empty in

  (* 2. At most two indexes on lineitem (an Index_sum generator with a
        table filter). *)
  let per_table =
    Constr.empty
    |> Constr.add_hard
         (Constr.Index_sum
            { scope = Constr.on_table "lineitem"; metric = Constr.Count;
              cmp = Constr.Le; bound = 2.0 })
  in
  let r2 = advise_with "at most 2 lineitem indexes" schema workload per_table in
  Fmt.pr "lineitem indexes chosen: %d@."
    (List.length (Storage.Config.on_table r2.Cophy.Advisor.config "lineitem"));

  (* 3. No wide indexes: every index with >= 4 key columns is banned. *)
  let no_wide =
    Constr.empty
    |> Constr.add_hard
         (Constr.Index_sum
            { scope = Constr.wide_indexes 4; metric = Constr.Count;
              cmp = Constr.Le; bound = 0.0 })
  in
  let r3 = advise_with "no indexes with >=4 key columns" schema workload no_wide in
  Storage.Config.iter
    (fun ix ->
      assert (List.length (Storage.Index.key_columns ix) < 4))
    r3.Cophy.Advisor.config;
  Fmt.pr "(verified: all chosen indexes are narrow)@.";

  (* 4. A mandatory index the DBA insists on. *)
  let pet_index =
    Storage.Index.create ~table:"part" [ "p_brand"; "p_type" ]
  in
  let mandatory =
    Constr.empty |> Constr.add_hard (Constr.Mandatory [ pet_index ])
  in
  let r4 =
    Cophy.Advisor.advise ~constraints:mandatory
      ~dba_candidates:[ pet_index ]
      ~baseline:(Advisors.Eval.baseline_config ()) schema workload
      ~budget_fraction:0.6
  in
  Fmt.pr "@.--- mandatory DBA index ---@.";
  Fmt.pr "pet index selected? %b@."
    (Storage.Config.mem pet_index r4.Cophy.Advisor.config);

  (* 5. A black-box (UDF) constraint, appendix E.5: the solver search
        rejects selections the predicate refuses. *)
  let balanced =
    Constr.Udf
      {
        udf_name = "at most 2 indexes per table";
        accepts =
          (fun candidates z ->
            let per_table = Hashtbl.create 8 in
            Array.iteri
              (fun i selected ->
                if selected then begin
                  let t = Storage.Index.table candidates.(i) in
                  Hashtbl.replace per_table t
                    (1 + Option.value ~default:0 (Hashtbl.find_opt per_table t))
                end)
              z;
            Hashtbl.fold (fun _ n ok -> ok && n <= 2) per_table true);
      }
  in
  let r5 =
    advise_with "UDF: <=2 indexes per table (black box)" schema workload
      (Constr.empty |> Constr.add_hard balanced)
  in
  let worst_table =
    List.fold_left
      (fun acc t ->
        max acc (List.length (Storage.Config.on_table r5.Cophy.Advisor.config t)))
      0
      [ "lineitem"; "orders"; "customer"; "part"; "partsupp"; "supplier" ]
  in
  Fmt.pr "max indexes on any table: %d@." worst_table;

  (* 6. An infeasible combination is detected up front (Fig. 3, line 1). *)
  (match
     Cophy.Advisor.advise
       ~constraints:
         (Constr.empty
         |> Constr.add_hard (Constr.Mandatory [ pet_index ])
         |> Constr.add_hard (Constr.Forbidden [ pet_index ]))
       ~dba_candidates:[ pet_index ] schema workload ~budget_fraction:0.6
   with
  | exception Cophy.Solver.Infeasible names ->
      Fmt.pr "@.--- infeasible constraints reported ---@.offenders: %a@."
        (Fmt.list ~sep:Fmt.comma Fmt.string) names
  | _ -> Fmt.pr "ERROR: infeasibility not detected!@.");

  ignore base
