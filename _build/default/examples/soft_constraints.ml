(* Soft constraints: explore the storage/performance trade-off.

     dune exec examples/soft_constraints.exe

   Instead of a hard storage budget, declare storage as a *soft*
   constraint; CoPhy then enumerates Pareto-optimal configurations along
   the (total index storage, workload cost) curve with the Chord
   algorithm, reusing solver state between points (paper §4.1, Fig 6c). *)

let () =
  let schema = Catalog.Tpch.schema ~sf:1.0 () in
  let workload = Workload.Gen.hom schema ~n:45 ~seed:7 in
  let env = Optimizer.Whatif.make_env schema in
  let cache = Inum.build_workload env workload in
  let candidates = Array.of_list (Cophy.Cgen.generate workload) in
  let sp = Cophy.Sproblem.build env cache candidates in

  Fmt.pr "=== Soft storage constraint: the Pareto curve ===@.";
  Fmt.pr "Candidates: %d, statements: %d@.@." (Array.length candidates)
    (List.length workload);

  let t0 = Unix.gettimeofday () in
  let points, solves =
    Cophy.Pareto.sweep ~epsilon:0.03 sp
      ~metric_coeff:(Cophy.Pareto.storage_metric sp)
  in
  let dt = Unix.gettimeofday () -. t0 in

  Fmt.pr "%-12s %-14s %-14s %s@." "lambda" "storage (MB)" "workload cost"
    "indexes";
  List.iter
    (fun (p : Cophy.Pareto.point) ->
      let n = Array.fold_left (fun n b -> if b then n + 1 else n) 0 p.Cophy.Pareto.z in
      Fmt.pr "%-12.3f %-14.1f %-14.0f %d@." p.Cophy.Pareto.lambda
        (p.Cophy.Pareto.metric /. 1e6)
        p.Cophy.Pareto.cost n)
    points;
  Fmt.pr "@.%d Pareto points from %d scalarized solves in %.2fs@."
    (List.length points) solves dt;

  (* Compare against re-solving every point cold (no multiplier reuse) —
     the Fig. 6c experiment in miniature. *)
  let t1 = Unix.gettimeofday () in
  let _, cold_solves =
    Cophy.Pareto.sweep ~epsilon:0.03 ~reuse:false sp
      ~metric_coeff:(Cophy.Pareto.storage_metric sp)
  in
  let cold = Unix.gettimeofday () -. t1 in
  Fmt.pr "Warm-started sweep: %.2fs; cold sweep: %.2fs (%d solves)@." dt cold
    cold_solves;

  (* The DBA picks a point; hand back the concrete DDL. *)
  match points with
  | _ :: (pick : Cophy.Pareto.point) :: _ ->
      Fmt.pr "@.Configuration at the second Pareto point:@.";
      Array.iteri
        (fun i selected ->
          if selected then
            Fmt.pr "  CREATE INDEX ON %s@."
              (Storage.Index.to_string sp.Cophy.Sproblem.candidates.(i)))
        pick.Cophy.Pareto.z
  | _ -> ()
