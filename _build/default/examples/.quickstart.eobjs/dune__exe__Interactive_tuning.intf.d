examples/interactive_tuning.mli:
