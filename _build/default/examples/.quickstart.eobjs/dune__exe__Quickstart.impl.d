examples/quickstart.ml: Advisors Array Catalog Cophy Fmt Optimizer Sqlast Storage Workload
