examples/sql_workload.ml: Advisors Catalog Cophy Fmt List Optimizer Sqlast Storage
