examples/sql_workload.mli:
