examples/soft_constraints.mli:
