examples/constrained_tuning.mli:
