examples/quickstart.mli:
