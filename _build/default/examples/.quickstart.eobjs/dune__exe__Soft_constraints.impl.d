examples/soft_constraints.ml: Array Catalog Cophy Fmt Inum List Optimizer Storage Unix Workload
