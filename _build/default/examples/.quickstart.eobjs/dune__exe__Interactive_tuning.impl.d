examples/interactive_tuning.ml: Catalog Constr Cophy Fmt Storage Unix Workload
