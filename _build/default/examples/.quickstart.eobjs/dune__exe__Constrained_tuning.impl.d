examples/constrained_tuning.ml: Advisors Array Catalog Constr Cophy Fmt Hashtbl List Option Storage Workload
