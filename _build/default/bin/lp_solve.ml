(* A small MIP solver front-end for CPLEX LP format files:

     dune exec bin/lp_solve.exe -- model.lp [--gap 0.01] [--time 60]

   Prints the status, objective, and nonzero variable values — handy for
   inspecting BIPs exported with Lp.Lp_format.to_file. *)

let () =
  let file = ref "" in
  let gap = ref 1e-6 in
  let time = ref infinity in
  let specs =
    [ ("--gap", Arg.Set_float gap, "relative optimality gap (default 1e-6)");
      ("--time", Arg.Set_float time, "time limit in seconds") ]
  in
  Arg.parse specs (fun f -> file := f) "lp_solve [options] FILE.lp";
  if !file = "" then begin
    prerr_endline "usage: lp_solve [options] FILE.lp";
    exit 2
  end;
  match Lp.Lp_format.of_file !file with
  | exception Lp.Lp_format.Format_error msg ->
      Fmt.epr "parse error: %s@." msg;
      exit 1
  | p ->
      let has_integers = Lp.Problem.integer_vars p <> [] in
      if has_integers then begin
        let options =
          { Lp.Branch_bound.default_options with
            Lp.Branch_bound.gap_tolerance = !gap;
            time_limit = !time }
        in
        let r = Lp.Branch_bound.solve ~options p in
        (match r.Lp.Branch_bound.status with
        | Lp.Branch_bound.Optimal -> Fmt.pr "status: optimal@."
        | Lp.Branch_bound.Feasible ->
            Fmt.pr "status: feasible (gap %.3g)@."
              ((r.Lp.Branch_bound.obj -. r.Lp.Branch_bound.bound)
              /. (abs_float r.Lp.Branch_bound.obj +. 1e-12))
        | Lp.Branch_bound.Infeasible -> Fmt.pr "status: infeasible@."
        | Lp.Branch_bound.Unbounded -> Fmt.pr "status: unbounded@."
        | Lp.Branch_bound.Limit -> Fmt.pr "status: limit reached@.");
        match r.Lp.Branch_bound.x with
        | None -> exit (if r.Lp.Branch_bound.status = Lp.Branch_bound.Infeasible then 1 else 3)
        | Some x ->
            Fmt.pr "objective: %.9g@.nodes: %d@." r.Lp.Branch_bound.obj
              r.Lp.Branch_bound.nodes;
            Array.iteri
              (fun v value ->
                if abs_float value > 1e-9 then
                  Fmt.pr "%s = %.9g@." (Lp.Problem.var p v).Lp.Problem.vname value)
              x
      end
      else begin
        let r = Lp.Simplex.solve p in
        (match r.Lp.Simplex.status with
        | Lp.Simplex.Optimal ->
            Fmt.pr "status: optimal@.objective: %.9g@.iterations: %d@."
              (r.Lp.Simplex.obj +. Lp.Problem.obj_offset p)
              r.Lp.Simplex.iterations;
            Array.iteri
              (fun v value ->
                if abs_float value > 1e-9 then
                  Fmt.pr "%s = %.9g@." (Lp.Problem.var p v).Lp.Problem.vname value)
              r.Lp.Simplex.x
        | Lp.Simplex.Infeasible -> Fmt.pr "status: infeasible@."; exit 1
        | Lp.Simplex.Unbounded -> Fmt.pr "status: unbounded@."; exit 1
        | Lp.Simplex.Iter_limit -> Fmt.pr "status: iteration limit@."; exit 3)
      end
