(* Benchmark entry point.

   Default mode runs the paper-reproduction experiment harness: one
   section per table/figure of the evaluation (Table 1, Figures 4-10),
   printing the same series the paper reports.

     dune exec bench/main.exe                 # every experiment
     dune exec bench/main.exe -- table1 fig5  # a subset
     dune exec bench/main.exe -- --micro      # Bechamel micro-benchmarks

   The micro suite measures the primitives with Bechamel: what-if
   optimization, INUM cache construction and cost evaluation, simplex
   solves, and decomposition iterations. *)

let micro_suite () =
  let open Bechamel in
  let schema = Catalog.Tpch.schema () in
  let w = Workload.Gen.hom schema ~n:15 ~seed:7 in
  let env = Optimizer.Whatif.make_env schema in
  let q =
    match (List.hd w).Sqlast.Ast.stmt with
    | Sqlast.Ast.Select q -> q
    | Sqlast.Ast.Update u -> Sqlast.Ast.query_shell u
  in
  let cands = Cophy.Cgen.generate w in
  let config = Storage.Config.of_list cands in
  let inum_cache = Inum.build env q in
  let wl_cache = Inum.build_workload env w in
  let sp = Cophy.Sproblem.build env wl_cache (Array.of_list cands) in
  let budget = Catalog.Tpch.database_size schema in
  let lp =
    (* a small dense LP representative of the z subproblem *)
    let p = Lp.Problem.create () in
    let vars =
      List.map
        (fun ix ->
          Lp.Problem.add_var ~ub:1.0
            ~obj:(-.(Storage.Index.size_bytes schema ix) /. 1e9)
            p)
        cands
    in
    ignore
      (Lp.Problem.add_row p
         (List.map (fun v -> (v, 1.0)) vars)
         Lp.Problem.Le 10.0);
    p
  in
  let tests =
    [
      Test.make ~name:"whatif_optimize"
        (Staged.stage (fun () -> ignore (Optimizer.Whatif.cost env q config)));
      Test.make ~name:"inum_build"
        (Staged.stage (fun () -> ignore (Inum.build env q)));
      Test.make ~name:"inum_cost_eval"
        (Staged.stage (fun () -> ignore (Inum.cost inum_cache config)));
      Test.make ~name:"sproblem_eval"
        (Staged.stage
           (fun () ->
             ignore
               (Cophy.Sproblem.eval sp
                  (Array.make (Cophy.Sproblem.num_candidates sp) true))));
      Test.make ~name:"simplex_small"
        (Staged.stage (fun () -> ignore (Lp.Simplex.solve lp)));
      Test.make ~name:"decomposition_5iters"
        (Staged.stage
           (fun () ->
             let options =
               { Cophy.Decomposition.default_options with
                 Cophy.Decomposition.max_iters = 5 }
             in
             ignore (Cophy.Decomposition.solve ~options sp ~budget ~z_rows:[])));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let stats = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Fmt.pr "%-28s %14.1f ns/run@." name est
          | _ -> Fmt.pr "%-28s (no estimate)@." name)
        stats)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--micro" args then micro_suite ()
  else begin
    let selected =
      List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
    in
    let to_run =
      if selected = [] then Experiments.all
      else
        List.filter (fun (name, _) -> List.mem name selected) Experiments.all
    in
    if to_run = [] then begin
      Fmt.epr "unknown experiment; available: %a@."
        (Fmt.list ~sep:Fmt.sp Fmt.string)
        (List.map fst Experiments.all);
      exit 1
    end;
    let t0 = Unix.gettimeofday () in
    List.iter (fun (_, f) -> f ()) to_run;
    Fmt.pr "@.Total experiment time: %.1fs@." (Unix.gettimeofday () -. t0)
  end
