bench/main.ml: Analyze Array Bechamel Benchmark Catalog Cophy Experiments Fmt Hashtbl Inum List Lp Measure Optimizer Printf Runtime Sqlast Staged Storage String Sys Test Time Toolkit Unix Workload
