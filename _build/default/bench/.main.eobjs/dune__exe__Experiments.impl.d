bench/experiments.ml: Advisors Array Catalog Cophy Fmt Hashtbl Inum List Lp Optimizer Printf Storage Unix Workload
