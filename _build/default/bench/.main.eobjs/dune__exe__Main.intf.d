bench/main.mli:
